//! The `serve_load` experiment: the engine as a multi-tenant service
//! under open-loop load, driven through `cdma-serve`'s deterministic
//! virtual-time harness.
//!
//! Three phases, all pure functions of the seed:
//!
//! 1. **nominal** — the target operating point (well under provisioned
//!    capacity): zero sheds required, latency percentiles reported.
//! 2. **overload** — 2× provisioned capacity against a bounded staging
//!    pool: admission control must shed, and shed *identically* on a
//!    rerun (the experiment runs the phase twice and checks).
//! 3. **saturation** — every tenant backlogged: served bytes must split
//!    by `BandwidthShare` weight, the paper's PCIe-arbiter fairness
//!    lifted to engine time.

use cdma_serve::{run_virtual, LoadReport, ServerConfig, ServiceModel, TenantLoad, TenantSpec};

use crate::report::{Artifact, Cell, Report, Table};
use crate::scenario::Context;

/// Workers the harness models (the ISSUE's target configuration).
const WORKERS: usize = 4;
/// Activation words per request: one 4 KB window.
const REQ_ELEMS: usize = 1024;
/// Arrival-schedule seed (same spirit as the figure seeds: fixed).
const SEED: u64 = 42;

/// One phase of the experiment.
#[derive(Debug, Clone)]
pub struct ServePhase {
    /// Phase label (`nominal`, `overload`, `saturation`).
    pub label: &'static str,
    /// The virtual harness's full report for the phase.
    pub report: LoadReport,
}

/// The serve_load report: three phases plus the determinism check.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// The three phases in run order.
    pub phases: Vec<ServePhase>,
    /// Whether the overload phase reran bit-identically.
    pub overload_deterministic: bool,
    /// Sheds observed in the overload phase.
    pub overload_sheds: u64,
    /// Worst per-tenant deviation between goodput share and weight share
    /// in the saturation phase (fraction, e.g. 0.02 = 2 points).
    pub fairness_deviation: f64,
}

fn capacity_req_per_s(model: ServiceModel) -> f64 {
    WORKERS as f64 / model.service_s((REQ_ELEMS * 4) as u64)
}

/// Runs the full experiment. `ctx` only decides the horizon: fast
/// contexts replay a shorter schedule.
pub fn serve_load(ctx: &Context) -> ServeLoadReport {
    let model = ServiceModel::default();
    let horizon = if ctx.is_fast() { 0.01 } else { 0.05 };
    let capacity = capacity_req_per_s(model);

    // Phase 1: nominal — an aggregate offered load safely under
    // capacity, split across a weighted tenant mix.
    let nominal_loads = vec![
        TenantLoad::new(TenantSpec::new("trainer").weight(3.0), 0.25 * capacity),
        TenantLoad::new(TenantSpec::new("batch"), 0.15 * capacity),
    ];
    let nominal_cfg = ServerConfig {
        workers: WORKERS,
        ..ServerConfig::default()
    };
    let nominal = run_virtual(&nominal_cfg, &nominal_loads, horizon, SEED, model);

    // Phase 2: overload — 2x capacity against a deliberately small pool
    // (one paper-sized 70 KB staging buffer); run twice, compare.
    let overload_loads = vec![
        TenantLoad::new(TenantSpec::new("trainer").weight(3.0), 1.2 * capacity),
        TenantLoad::new(TenantSpec::new("batch"), 0.8 * capacity),
    ];
    let overload_cfg = ServerConfig {
        workers: WORKERS,
        staging_bytes: 70 * 1024,
        ..ServerConfig::default()
    };
    let overload = run_virtual(&overload_cfg, &overload_loads, horizon, SEED, model);
    let overload_again = run_virtual(&overload_cfg, &overload_loads, horizon, SEED, model);
    let overload_deterministic = overload.deterministic_summary_json()
        == overload_again.deterministic_summary_json()
        && overload.latency_json() == overload_again.latency_json();
    let overload_sheds = overload.total_shed();

    // Phase 3: saturation — three tenants at 3:2:1 weights, each offered
    // most of a machine on its own; deep queues and a pool sized for them
    // keep every tenant backlogged so the arbiter's split is visible.
    let depth = 64usize;
    let sat_loads = vec![
        TenantLoad::new(
            TenantSpec::new("gold").weight(3.0).queue_depth(depth),
            0.8 * capacity,
        ),
        TenantLoad::new(
            TenantSpec::new("silver").weight(2.0).queue_depth(depth),
            0.8 * capacity,
        ),
        TenantLoad::new(
            TenantSpec::new("bronze").weight(1.0).queue_depth(depth),
            0.8 * capacity,
        ),
    ];
    let sat_cfg = ServerConfig {
        workers: WORKERS,
        staging_bytes: (3 * depth + WORKERS) as u64 * (REQ_ELEMS * 4) as u64,
        ..ServerConfig::default()
    };
    let saturation = run_virtual(&sat_cfg, &sat_loads, horizon, SEED, model);
    let total_weight: f64 = sat_loads.iter().map(|l| l.spec.weight).sum();
    let total_bytes: u64 = saturation
        .tenants
        .iter()
        .map(|t| t.counters.uncompressed_bytes)
        .sum();
    let fairness_deviation = saturation
        .tenants
        .iter()
        .map(|t| {
            let got = t.counters.uncompressed_bytes as f64 / total_bytes.max(1) as f64;
            let want = t.weight / total_weight;
            (got - want).abs()
        })
        .fold(0.0, f64::max);

    ServeLoadReport {
        phases: vec![
            ServePhase {
                label: "nominal",
                report: nominal,
            },
            ServePhase {
                label: "overload",
                report: overload,
            },
            ServePhase {
                label: "saturation",
                report: saturation,
            },
        ],
        overload_deterministic,
        overload_sheds,
        fairness_deviation,
    }
}

impl Report for ServeLoadReport {
    fn name(&self) -> &'static str {
        "serve_load"
    }

    fn title(&self) -> String {
        "cdma-serve: multi-tenant load harness — latency, sheds, fairness".to_owned()
    }

    fn tables(&self) -> Vec<Table> {
        let mut lat = Table::new(
            "per-tenant latency and admission (virtual time)",
            &[
                "phase",
                "tenant",
                "weight",
                "submitted",
                "completed",
                "shed",
                "p50_us",
                "p95_us",
                "p99_us",
                "max_us",
            ],
        );
        for phase in &self.phases {
            for t in &phase.report.tenants {
                let c = &t.counters;
                let shed = c.shed_queue + c.shed_staging + c.quota_rejected;
                let (p50, p95, p99, max) = match &t.latency {
                    Some(l) => (l.p50_s * 1e6, l.p95_s * 1e6, l.p99_s * 1e6, l.max_s * 1e6),
                    None => (0.0, 0.0, 0.0, 0.0),
                };
                lat.row([
                    phase.label.into(),
                    t.name.as_str().into(),
                    Cell::Num(t.weight),
                    c.submitted.into(),
                    c.completed.into(),
                    shed.into(),
                    Cell::Num(p50),
                    Cell::Num(p95),
                    Cell::Num(p99),
                    Cell::Num(max),
                ]);
            }
        }
        let mut thru = Table::new(
            "phase throughput and staging pressure",
            &[
                "phase",
                "offered_req",
                "completed_req",
                "req_per_s",
                "goodput_gbps",
                "shed_total",
                "staging_high_water",
                "staging_capacity",
            ],
        );
        for phase in &self.phases {
            let r = &phase.report;
            let offered: u64 = r.tenants.iter().map(|t| t.counters.submitted).sum();
            thru.row([
                phase.label.into(),
                offered.into(),
                r.total_completed().into(),
                Cell::Num(r.throughput_req_per_s()),
                Cell::Num(r.goodput_bytes_per_s() / 1e9),
                r.total_shed().into(),
                r.staging_high_water.into(),
                r.staging_capacity.into(),
            ]);
        }
        vec![lat, thru]
    }

    fn notes(&self) -> Vec<String> {
        let nominal = &self.phases[0].report;
        let mut notes = vec![format!(
            "nominal: {:.0} req/s of 4 KB ZVC compress jobs on {} workers, p99 {:.1} us, 0 sheds required",
            nominal.throughput_req_per_s(),
            nominal.workers,
            nominal
                .tenants
                .iter()
                .filter_map(|t| t.latency.as_ref())
                .map(|l| l.p99_s * 1e6)
                .fold(0.0, f64::max),
        )];
        notes.push(format!(
            "overload (2x capacity, 70 KB pool): {} sheds, rerun bit-identical: {}",
            self.overload_sheds, self.overload_deterministic
        ));
        notes.push(format!(
            "saturation: goodput shares track 3:2:1 BandwidthShare weights within {:.2} points",
            self.fairness_deviation * 100.0
        ));
        notes
    }

    fn artifacts(&self) -> Vec<Artifact> {
        // The full latency reports, one JSON document per phase — the
        // same shape the `serve` bench writes to BENCH_serve.json.
        let mut body = String::from("[\n");
        for (i, p) in self.phases.iter().enumerate() {
            body.push_str(&p.report.latency_json());
            if i + 1 < self.phases.len() {
                body.push_str(",\n");
            }
        }
        body.push_str("]\n");
        vec![Artifact {
            name: "serve_load_latency.json".to_owned(),
            bytes: body.into_bytes(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_load_meets_its_acceptance_bars() {
        let report = serve_load(&Context::fast());
        assert_eq!(report.phases.len(), 3);

        // Nominal: no sheds, a real percentile table, >= 10k req/s.
        let nominal = &report.phases[0].report;
        assert_eq!(nominal.total_shed(), 0, "nominal load must not shed");
        assert!(nominal.throughput_req_per_s() >= 10_000.0);
        for t in &nominal.tenants {
            let l = t.latency.as_ref().expect("every tenant completed work");
            assert!(l.p99_s >= l.p50_s && l.p99_s > 0.0);
        }

        // Overload: sheds happen and the rerun matched bit-for-bit.
        assert!(report.overload_sheds > 0, "2x overload must shed");
        assert!(report.overload_deterministic);
        // 70 KiB is not a multiple of the 4 KiB request footprint, so the
        // pool tops out within one request of capacity, never exactly at it.
        let overload = &report.phases[1].report;
        assert!(overload.staging_capacity - overload.staging_high_water < (REQ_ELEMS * 4) as u64);

        // Saturation: goodput within 5 points of the weight split.
        assert!(
            report.fairness_deviation < 0.05,
            "weighted shares off by {:.3}",
            report.fairness_deviation
        );

        // Accepted work is never dropped, in every phase.
        for p in &report.phases {
            for t in &p.report.tenants {
                assert_eq!(t.counters.accepted, t.counters.completed, "{}", t.name);
            }
        }
    }

    #[test]
    fn report_renders() {
        let report = serve_load(&Context::fast());
        let tables = report.tables();
        assert_eq!(tables.len(), 2);
        // 2 + 2 + 3 tenant rows.
        assert_eq!(tables[0].rows().len(), 7);
        assert_eq!(tables[1].rows().len(), 3);
        assert_eq!(report.artifacts().len(), 1);
        assert!(report.notes().iter().any(|n| n.contains("bit-identical")));
    }
}
