//! The event-driven-timeline experiments: the Fig. 2(b) step Gantt chart
//! and the fidelity sweep cross-validating the timeline's three transfer
//! sources. Fidelity is selected *by value* — each scenario names a
//! [`Fidelity`] level and [`Context::transfer_source`] builds the source
//! at a single call site.

use cdma_vdnn::timeline::Phase;
use cdma_vdnn::{
    ComputeModel, CudnnVersion, Fidelity, StepTimeline, TimelineSim, TransferPolicy, UniformRatio,
};

use crate::report::{Cell, Report, Table};
use crate::scenario::{Context, Runner, Scenario, ScenarioFilter, ScenarioSet};

/// One row of the fidelity sweep: the same training step simulated
/// through the event-driven timeline at one of its three fidelity levels.
#[derive(Debug, Clone)]
pub struct FidelityRow {
    /// Network name.
    pub network: String,
    /// Transfer-source label (`uniform-ratio`, `profiled-density`,
    /// `measured-stream`).
    pub fidelity: &'static str,
    /// Step latency, seconds.
    pub step_time: f64,
    /// Fraction of the step spent stalled on transfers.
    pub stall_fraction: f64,
    /// Events processed by the timeline (line-granularity at the measured
    /// level).
    pub events: u64,
}

impl FidelityRow {
    fn from_timeline(network: &str, tl: &StepTimeline) -> Self {
        FidelityRow {
            network: network.to_owned(),
            fidelity: tl.fidelity(),
            step_time: tl.total(),
            stall_fraction: tl.breakdown.stall_fraction(),
            events: tl.events_processed(),
        }
    }
}

/// Simulates one scenario's training step through the timeline at the
/// scenario's fidelity level — the whole fidelity dispatch is the
/// [`Context::transfer_source`] call.
pub fn fidelity_row(ctx: &Context, scenario: &Scenario) -> FidelityRow {
    let spec = ctx.spec(&scenario.network);
    let sim = TimelineSim::new(scenario.config, ComputeModel::titan_x(CudnnVersion::V5));
    let source = ctx.transfer_source(scenario);
    FidelityRow::from_timeline(spec.name(), &sim.simulate(&spec, &source))
}

/// The fidelity-sweep report.
#[derive(Debug, Clone)]
pub struct FidelitySweepReport {
    /// One row per network × fidelity level.
    pub rows: Vec<FidelityRow>,
    /// The training checkpoint the sweep ran at.
    pub checkpoint: f64,
}

/// The full fidelity sweep: every (filtered) zoo network × the three
/// fidelity levels at training checkpoint 0.5 — the cross-validation
/// behind the timeline's claim that analytic ratios approximate real
/// compressed streams.
pub fn fidelity_sweep(
    ctx: &Context,
    runner: &Runner,
    filter: &ScenarioFilter,
) -> FidelitySweepReport {
    let checkpoint = 0.5;
    let set = ScenarioSet::builder()
        .fidelities(Fidelity::ALL)
        .checkpoints([checkpoint])
        .build()
        .filtered(filter);
    let rows = runner.run(&set, |s| fidelity_row(ctx, s));
    FidelitySweepReport { rows, checkpoint }
}

impl Report for FidelitySweepReport {
    fn name(&self) -> &'static str {
        "fidelity_sweep"
    }

    fn title(&self) -> String {
        format!(
            "Timeline fidelity sweep at checkpoint {:.1}: analytic vs measured transfers",
            self.checkpoint
        )
    }

    fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "per-network step time by fidelity",
            &[
                "network",
                "fidelity",
                "step_seconds",
                "stall_fraction",
                "events",
            ],
        );
        for r in &self.rows {
            t.row([
                r.network.as_str().into(),
                r.fidelity.into(),
                Cell::Num(r.step_time),
                Cell::Num(r.stall_fraction),
                r.events.into(),
            ]);
        }
        vec![t]
    }

    fn notes(&self) -> Vec<String> {
        // Largest relative disagreement between the coarsest and finest
        // level — the sweep's cross-validation headline.
        let mut worst: Option<(String, f64)> = None;
        for r in &self.rows {
            if r.fidelity != Fidelity::MeasuredStream.label() {
                continue;
            }
            let Some(base) = self
                .rows
                .iter()
                .find(|b| b.network == r.network && b.fidelity == Fidelity::UniformRatio.label())
            else {
                continue;
            };
            let rel = (r.step_time - base.step_time).abs() / base.step_time;
            if worst.as_ref().is_none_or(|(_, w)| rel > *w) {
                worst = Some((r.network.clone(), rel));
            }
        }
        match worst {
            Some((net, rel)) => vec![format!(
                "largest measured-vs-uniform step-time disagreement: {:.1}% ({net})",
                rel * 100.0
            )],
            None => Vec::new(),
        }
    }
}

/// One forward stage of the Fig. 2 chart: vDNN vs cDMA transfer overlap.
#[derive(Debug, Clone)]
pub struct Fig02Stage {
    /// Layer name.
    pub layer: String,
    /// Layer compute seconds.
    pub compute: f64,
    /// Uncompressed-vDNN transfer seconds overlapping this stage.
    pub vdnn_transfer: f64,
    /// Seconds the GPU stalls under vDNN.
    pub vdnn_stall: f64,
    /// The same transfer as real compressed lines through the pipeline.
    pub cdma_transfer: f64,
}

/// The Fig. 2(b) report.
#[derive(Debug, Clone)]
pub struct Fig02Report {
    /// The charted network.
    pub network: String,
    /// The first forward stages (the figure shows the head of the pass).
    pub stages: Vec<Fig02Stage>,
    /// Step totals: the vDNN analytic baseline, the three fidelity
    /// levels, and the oracle.
    pub totals: Vec<FidelityRow>,
    /// ASCII Gantt chart lines.
    pub gantt: Vec<String>,
    /// First events of the measured run's log.
    pub event_log: Vec<String>,
}

/// Generates the Fig. 2(b) timeline chart for GoogLeNet (or the first
/// network the filter admits).
pub fn fig02_timeline(ctx: &Context, filter: &ScenarioFilter) -> Fig02Report {
    let network = if filter.matches_network("GoogLeNet") {
        "GoogLeNet".to_owned()
    } else {
        ScenarioSet::builder()
            .build()
            .filtered(filter)
            .networks()
            .first()
            .cloned()
            .unwrap_or_else(|| "GoogLeNet".to_owned())
    };
    let base_set = ScenarioSet::builder()
        .networks([network.clone()])
        .fidelities(Fidelity::ALL)
        .build();
    let spec = ctx.spec(&network);
    let cfg = base_set.scenarios()[0].config;
    let sim = TimelineSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));

    // Uncompressed vDNN at the analytic level; cDMA at the measured level
    // (real ZVC line sizes of profiled activations, mid-training).
    let vdnn = sim.simulate(&spec, &UniformRatio::uniform(&spec, 1.0));
    let measured_scenario = base_set
        .scenarios()
        .iter()
        .find(|s| s.fidelity == Fidelity::MeasuredStream)
        .expect("all fidelities built");
    let cdma = sim.simulate(&spec, &ctx.transfer_source(measured_scenario));

    let forward = |tl: &StepTimeline, i: usize| {
        *tl.stages()
            .iter()
            .find(|s| s.phase == Phase::Forward && s.layer == i)
            .expect("forward stage")
    };
    let mut stages = Vec::new();
    let mut gantt = Vec::new();
    let ms_per_col = 2.0e-3; // one column = 2 ms
    let cols = |t: f64| (t / ms_per_col).round() as usize;
    for (i, layer) in spec.layers().iter().enumerate().take(14) {
        let sv = forward(&vdnn, i);
        let sc = forward(&cdma, i);
        stages.push(Fig02Stage {
            layer: layer.name.clone(),
            compute: sv.compute,
            vdnn_transfer: sv.transfer,
            vdnn_stall: sv.stall(),
            cdma_transfer: sc.transfer,
        });
        let c = cols(sv.compute);
        let mut line = "#".repeat(c.max(1));
        if sv.stall() > 0.0 {
            line.push_str(&"!".repeat(cols(sv.transfer).saturating_sub(c).max(1)));
        }
        gantt.push(format!(
            "{:<18} {:>5.1}ms  {}",
            layer.name,
            sv.compute * 1e3,
            line
        ));
        gantt.push(format!(
            "{:<18} {:>7}  {}",
            "",
            "cDMA:",
            "~".repeat(cols(sc.transfer).max(1))
        ));
    }

    let mut totals = vec![FidelityRow {
        network: network.clone(),
        fidelity: "vdnn-analytic",
        step_time: vdnn.total(),
        stall_fraction: vdnn.breakdown.stall_fraction(),
        events: vdnn.events_processed(),
    }];
    for s in base_set.scenarios() {
        totals.push(fidelity_row(ctx, s));
    }
    let oracle = sim.simulate(&spec, &UniformRatio::new(&spec, TransferPolicy::Oracle));
    totals.push(FidelityRow {
        network: network.clone(),
        fidelity: "oracle",
        step_time: oracle.total(),
        stall_fraction: 0.0,
        events: oracle.events_processed(),
    });

    let event_log = cdma
        .events()
        .iter()
        .take(16)
        .map(|e| format!("{:>10.3} ms  {:?}", e.time * 1e3, e.kind))
        .chain(std::iter::once(format!(
            "... {} log events, {} processed (line-granularity DMA pipeline events included)",
            cdma.events().len(),
            cdma.events_processed()
        )))
        .collect();

    Fig02Report {
        network,
        stages,
        totals,
        gantt,
        event_log,
    }
}

impl Report for Fig02Report {
    fn name(&self) -> &'static str {
        "fig02_timeline"
    }

    fn title(&self) -> String {
        format!(
            "Figure 2(b): forward-pass timeline — compute vs offload per layer ({})",
            self.network
        )
    }

    fn tables(&self) -> Vec<Table> {
        let mut stages = Table::new(
            "forward stages (head of the pass)",
            &[
                "layer",
                "compute_ms",
                "vdnn_transfer_ms",
                "vdnn_stall_ms",
                "cdma_transfer_ms",
            ],
        );
        for s in &self.stages {
            stages.row([
                s.layer.as_str().into(),
                Cell::Num(s.compute * 1e3),
                Cell::Num(s.vdnn_transfer * 1e3),
                Cell::Num(s.vdnn_stall * 1e3),
                Cell::Num(s.cdma_transfer * 1e3),
            ]);
        }
        let mut totals = Table::new(
            "step totals across fidelity levels",
            &["fidelity", "step_ms", "stall_pct", "events"],
        );
        for r in &self.totals {
            totals.row([
                r.fidelity.into(),
                Cell::Num(r.step_time * 1e3),
                Cell::Num(r.stall_fraction * 100.0),
                r.events.into(),
            ]);
        }
        vec![stages, totals]
    }

    fn notes(&self) -> Vec<String> {
        let mut notes = self.gantt.clone();
        notes.push(
            "'#' compute, '!' stall where the uncompressed offload outlasts compute, \
             '~' the same transfer as real compressed lines through the DMA pipeline"
                .to_owned(),
        );
        notes.extend(self.event_log.iter().cloned());
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_gpusim::SystemConfig;
    use cdma_vdnn::RatioTable;

    fn ctx() -> Context {
        Context::with_table(RatioTable::build_fast(11))
    }

    #[test]
    fn fidelity_levels_agree_on_alexnet() {
        let ctx = ctx();
        let set = ScenarioSet::builder()
            .networks(["AlexNet"])
            .fidelities(Fidelity::ALL)
            .seed(11)
            .build();
        let rows: Vec<FidelityRow> = set
            .scenarios()
            .iter()
            .map(|s| fidelity_row(&ctx, s))
            .collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].fidelity, "uniform-ratio");
        assert_eq!(rows[1].fidelity, "profiled-density");
        assert_eq!(rows[2].fidelity, "measured-stream");
        // All three levels model the same step: the times must agree to
        // well within the vDNN-vs-oracle spread.
        let base = rows[0].step_time;
        for r in &rows {
            assert!(r.step_time > 0.0 && r.stall_fraction < 1.0);
            assert!(
                (r.step_time - base).abs() / base < 0.30,
                "{} step {} vs uniform {}",
                r.fidelity,
                r.step_time,
                base
            );
        }
        // The measured level simulates at line granularity.
        assert!(rows[2].events > 100 * rows[0].events);
    }

    #[test]
    fn fidelity_sweep_covers_filtered_networks() {
        let report = fidelity_sweep(
            &ctx(),
            &Runner::sequential(),
            &ScenarioFilter::all().network("SqueezeNet"),
        );
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows.iter().all(|r| r.network == "SqueezeNet"));
        assert!(!report.notes().is_empty());
    }

    #[test]
    fn fig02_charts_the_head_of_the_network() {
        let report = fig02_timeline(&ctx(), &ScenarioFilter::all().network("AlexNet"));
        assert_eq!(report.network, "AlexNet");
        assert!(!report.stages.is_empty());
        assert_eq!(report.totals.len(), 5); // vdnn + 3 fidelities + oracle
        assert_eq!(report.totals[0].fidelity, "vdnn-analytic");
        assert_eq!(report.totals[4].fidelity, "oracle");
        // The oracle is the floor, vDNN the ceiling.
        let oracle = report.totals[4].step_time;
        let vdnn = report.totals[0].step_time;
        assert!(oracle <= vdnn);
        for r in &report.totals {
            assert!(
                r.step_time >= oracle - 1e-12 && r.step_time <= vdnn + 1e-12,
                "{}",
                r.fidelity
            );
        }
        let _ = SystemConfig::titan_x_pcie3();
    }
}
