//! The paper-grid experiments: compression ratios (Fig. 11), offload
//! traffic (Fig. 12), end-to-end performance (Fig. 13), the cuDNN sweep
//! (Fig. 3), and the headline aggregates — all driven by
//! [`ScenarioSet::paper_grid`] instead of per-driver triple loops.

use cdma_compress::Algorithm;
use cdma_gpusim::SystemConfig;
use cdma_tensor::Layout;
use cdma_vdnn::{traffic, ComputeModel, CudnnVersion, StepSim, TransferPolicy};

use crate::report::{Cell, Report, Table};
use crate::scenario::{Context, Runner, ScenarioFilter, ScenarioSet};

/// One bar group of Fig. 11: per network × layout × algorithm, the
/// byte-weighted average and per-layer maximum compression ratio.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Network name.
    pub network: String,
    /// Activation memory layout.
    pub layout: Layout,
    /// Compression algorithm.
    pub algorithm: Algorithm,
    /// Average (weighted) network compression ratio.
    pub avg_ratio: f64,
    /// Maximum per-layer ratio.
    pub max_ratio: f64,
}

/// The Fig. 11 report: one row per grid cell, plus the extension-codec
/// rows kept in a separate table so the paper grid stays pinned.
#[derive(Debug, Clone)]
pub struct Fig11Report {
    /// The grid rows, in paper-grid order (the paper's three codecs).
    pub rows: Vec<Fig11Row>,
    /// Extension-codec rows (HF, AD) over the same network × layout
    /// cells — reported alongside but never mixed into the paper grid.
    pub extended: Vec<Fig11Row>,
}

/// The codecs reported in Fig. 11's companion table but absent from the
/// paper's own grid.
const FIG11_EXTENSION_ALGS: [Algorithm; 2] = [Algorithm::Huff, Algorithm::Adaptive];

/// Generates Fig. 11 over the (possibly filtered) paper grid.
pub fn fig11(ctx: &Context, runner: &Runner, filter: &ScenarioFilter) -> Fig11Report {
    let set = ScenarioSet::paper_grid().filtered(filter);
    let rows = runner.run(&set, |s| {
        let t = ctx.traffic(&s.network, s.algorithm, s.layout);
        Fig11Row {
            network: s.network.clone(),
            layout: s.layout,
            algorithm: s.algorithm,
            avg_ratio: t.avg_ratio(),
            max_ratio: t.max_layer_ratio(),
        }
    });
    // One extension-codec row per distinct (network, layout) cell the
    // filter's non-algorithm axes admit. The cells are derived from the
    // *unfiltered* grid with the algorithm swapped to an extension codec,
    // so `--filter alg=hf,ad` still produces extension rows even though
    // no paper-grid scenario carries those codecs.
    let algs: Vec<Algorithm> = FIG11_EXTENSION_ALGS
        .into_iter()
        .filter(|a| filter.matches_algorithm(*a))
        .collect();
    let mut cells: Vec<(String, Layout)> = Vec::new();
    if let Some(&probe_alg) = algs.first() {
        for s in ScenarioSet::paper_grid().scenarios() {
            let mut probe = s.clone();
            probe.algorithm = probe_alg;
            let cell = (s.network.clone(), s.layout);
            if filter.matches(&probe) && !cells.contains(&cell) {
                cells.push(cell);
            }
        }
    }
    let extended = runner
        .map(&cells, |(network, layout)| {
            algs.iter()
                .map(|&alg| {
                    let t = ctx.traffic(network, alg, *layout);
                    Fig11Row {
                        network: network.clone(),
                        layout: *layout,
                        algorithm: alg,
                        avg_ratio: t.avg_ratio(),
                        max_ratio: t.max_layer_ratio(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    Fig11Report { rows, extended }
}

impl Report for Fig11Report {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn title(&self) -> String {
        "Figure 11: avg (network) and max (layer) compression ratios".to_owned()
    }

    fn tables(&self) -> Vec<Table> {
        let cols = ["network", "layout", "algorithm", "avg_ratio", "max_ratio"];
        let fill = |t: &mut Table, rows: &[Fig11Row]| {
            for r in rows {
                t.row([
                    r.network.as_str().into(),
                    r.layout.to_string().into(),
                    r.algorithm.label().into(),
                    Cell::Num(r.avg_ratio),
                    Cell::Num(r.max_ratio),
                ]);
            }
        };
        let mut t = Table::new("compression ratios", &cols);
        fill(&mut t, &self.rows);
        let mut tables = vec![t];
        if !self.extended.is_empty() {
            let mut t = Table::new("extension codecs (HF, AD)", &cols);
            fill(&mut t, &self.extended);
            tables.push(t);
        }
        tables
    }

    fn notes(&self) -> Vec<String> {
        let zv: Vec<&Fig11Row> = self
            .rows
            .iter()
            .filter(|r| r.layout == Layout::Nchw && r.algorithm == Algorithm::Zvc)
            .collect();
        if zv.is_empty() {
            return Vec::new();
        }
        let avg = zv.iter().map(|r| r.avg_ratio).sum::<f64>() / zv.len() as f64;
        let max = zv.iter().map(|r| r.max_ratio).fold(0.0, f64::max);
        vec![format!(
            "ZV (NCHW): average network ratio {avg:.2}x (paper 2.6x), max per-layer {max:.1}x (paper 13.8x)"
        )]
    }
}

/// One bar of Fig. 12: offloaded bytes normalized to uncompressed vDNN.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Network name.
    pub network: String,
    /// Compression algorithm.
    pub algorithm: Algorithm,
    /// Compressed size over uncompressed size (lower is better).
    pub normalized_offload: f64,
}

/// The Fig. 12 report.
#[derive(Debug, Clone)]
pub struct Fig12Report {
    /// One row per network × algorithm (NCHW layout).
    pub rows: Vec<Fig12Row>,
}

/// Generates Fig. 12 (NCHW layout, as the paper's results section uses).
pub fn fig12(ctx: &Context, runner: &Runner, filter: &ScenarioFilter) -> Fig12Report {
    let set = ScenarioSet::paper_grid()
        .filtered(filter)
        .filtered(&ScenarioFilter::all().layout(Layout::Nchw));
    let rows = runner.run(&set, |s| {
        let t = ctx.traffic(&s.network, s.algorithm, s.layout);
        Fig12Row {
            network: s.network.clone(),
            algorithm: s.algorithm,
            normalized_offload: t.normalized_offload(),
        }
    });
    Fig12Report { rows }
}

impl Report for Fig12Report {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> String {
        "Figure 12: offload size normalized to vDNN (lower is better)".to_owned()
    }

    fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "normalized offload",
            &["network", "algorithm", "normalized_offload"],
        );
        for r in &self.rows {
            t.row([
                r.network.as_str().into(),
                r.algorithm.label().into(),
                Cell::Num(r.normalized_offload),
            ]);
        }
        vec![t]
    }

    fn notes(&self) -> Vec<String> {
        let avg = |alg: Algorithm| -> Option<f64> {
            let v: Vec<f64> = self
                .rows
                .iter()
                .filter(|r| r.algorithm == alg)
                .map(|r| r.normalized_offload)
                .collect();
            (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
        };
        match (
            avg(Algorithm::Rle),
            avg(Algorithm::Zvc),
            avg(Algorithm::Zlib),
        ) {
            (Some(rl), Some(zv), Some(zl)) => vec![
                format!("average normalized offload: RL {rl:.2}, ZV {zv:.2}, ZL {zl:.2}"),
                format!(
                    "zlib's extra reduction over ZVC: {:.1}% (paper: ~3% average)",
                    (zv - zl) / zv * 100.0
                ),
            ],
            _ => Vec::new(),
        }
    }
}

/// Transfer configuration of one Fig. 13 bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfConfig {
    /// Uncompressed vDNN.
    Vdnn,
    /// cDMA with the given algorithm.
    Cdma(Algorithm),
    /// The oracle (PCIe bottleneck removed).
    Oracle,
}

impl PerfConfig {
    /// Label as in Fig. 13 ("vDNN", "RL", "ZV", "ZL", "orac").
    pub fn label(&self) -> &'static str {
        match self {
            PerfConfig::Vdnn => "vDNN",
            PerfConfig::Cdma(a) => a.label(),
            PerfConfig::Oracle => "orac",
        }
    }
}

/// One bar of Fig. 13: performance normalized to the oracle.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Network name.
    pub network: String,
    /// Transfer configuration.
    pub config: PerfConfig,
    /// Performance normalized to the oracle baseline (1.0 = no overhead).
    pub performance: f64,
}

/// The Fig. 13 report.
#[derive(Debug, Clone)]
pub struct Fig13Report {
    /// One row per network × transfer configuration.
    pub rows: Vec<Fig13Row>,
}

/// Generates Fig. 13 on the paper grid's NCHW cells with cuDNN v5
/// compute: per network, the vDNN baseline, one cDMA bar per algorithm
/// cell, and the oracle.
pub fn fig13(ctx: &Context, runner: &Runner, filter: &ScenarioFilter) -> Fig13Report {
    let set = ScenarioSet::paper_grid()
        .filtered(filter)
        .filtered(&ScenarioFilter::all().layout(Layout::Nchw));
    let networks = set.networks();
    let rows = runner.map(&networks, |network| {
        let spec = ctx.spec(network);
        let cells: Vec<_> = set
            .scenarios()
            .iter()
            .filter(|s| &s.network == network)
            .collect();
        let cfg = cells[0].config;
        let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
        let mut rows = vec![Fig13Row {
            network: network.clone(),
            config: PerfConfig::Vdnn,
            performance: sim.normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0)),
        }];
        for s in cells {
            let t = ctx.traffic(&s.network, s.algorithm, s.layout);
            let ratios = traffic::per_layer_ratios(&t);
            rows.push(Fig13Row {
                network: network.clone(),
                config: PerfConfig::Cdma(s.algorithm),
                performance: sim.normalized_performance(&spec, TransferPolicy::OffloadAll(ratios)),
            });
        }
        rows.push(Fig13Row {
            network: network.clone(),
            config: PerfConfig::Oracle,
            performance: 1.0,
        });
        rows
    });
    Fig13Report {
        rows: rows.into_iter().flatten().collect(),
    }
}

impl Report for Fig13Report {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn title(&self) -> String {
        "Figure 13: performance normalized to oracle (higher is better)".to_owned()
    }

    fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "normalized performance",
            &["network", "config", "performance"],
        );
        for r in &self.rows {
            t.row([
                r.network.as_str().into(),
                r.config.label().into(),
                Cell::Num(r.performance),
            ]);
        }
        vec![t]
    }

    fn notes(&self) -> Vec<String> {
        let perf = |net: &str, c: PerfConfig| -> Option<f64> {
            self.rows
                .iter()
                .find(|r| r.network == net && r.config == c)
                .map(|r| r.performance)
        };
        let mut improvements = Vec::new();
        let mut zl_gains = Vec::new();
        for net in self.networks() {
            let (Some(vdnn), Some(zv)) = (
                perf(&net, PerfConfig::Vdnn),
                perf(&net, PerfConfig::Cdma(Algorithm::Zvc)),
            ) else {
                continue;
            };
            improvements.push(zv / vdnn - 1.0);
            if let Some(zl) = perf(&net, PerfConfig::Cdma(Algorithm::Zlib)) {
                zl_gains.push(zl / zv - 1.0);
            }
        }
        let mut notes = Vec::new();
        if !improvements.is_empty() {
            let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
            let max = improvements.iter().cloned().fold(0.0, f64::max);
            notes.push(format!(
                "cDMA-ZV improvement over vDNN: average {:.1}% (paper 32%), maximum {:.1}% (paper 61%)",
                avg * 100.0,
                max * 100.0
            ));
        }
        if !zl_gains.is_empty() {
            let avg = zl_gains.iter().sum::<f64>() / zl_gains.len() as f64;
            let max = zl_gains.iter().cloned().fold(f64::MIN, f64::max);
            notes.push(format!(
                "zlib speedup over ZVC: average {:.1}% (paper 0.7%), max {:.1}% (paper 2.2%)",
                avg * 100.0,
                max * 100.0
            ));
        }
        notes
    }
}

impl Fig13Report {
    fn networks(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.rows {
            if !names.contains(&r.network) {
                names.push(r.network.clone());
            }
        }
        names
    }
}

/// One point of Fig. 3: per network and cuDNN version, the compute
/// speedup over v1 (panel a) and vDNN performance normalized to the
/// same-version oracle (panel b).
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Network name.
    pub network: String,
    /// cuDNN version.
    pub version: CudnnVersion,
    /// Compute speedup relative to cuDNN v1 (Fig. 3a).
    pub speedup_vs_v1: f64,
    /// vDNN performance normalized to the oracle (Fig. 3b).
    pub vdnn_performance: f64,
}

/// The Fig. 3 report (both panels).
#[derive(Debug, Clone)]
pub struct Fig03Report {
    /// One row per network × cuDNN version.
    pub rows: Vec<Fig3Row>,
}

/// Generates both panels of Fig. 3.
pub fn fig03(ctx: &Context, runner: &Runner, filter: &ScenarioFilter) -> Fig03Report {
    let cfg = SystemConfig::titan_x_pcie3();
    let networks: Vec<String> = ScenarioSet::builder().build().filtered(filter).networks();
    let rows = runner.map(&networks, |network| {
        let spec = ctx.spec(network);
        let t1 = ComputeModel::titan_x(CudnnVersion::V1).step_compute_time(&spec);
        CudnnVersion::ALL
            .into_iter()
            .map(|v| {
                let model = ComputeModel::titan_x(v);
                let sim = StepSim::new(cfg, model);
                Fig3Row {
                    network: network.clone(),
                    version: v,
                    speedup_vs_v1: t1 / model.step_compute_time(&spec),
                    vdnn_performance: sim
                        .normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0)),
                }
            })
            .collect::<Vec<_>>()
    });
    Fig03Report {
        rows: rows.into_iter().flatten().collect(),
    }
}

impl Report for Fig03Report {
    fn name(&self) -> &'static str {
        "fig03"
    }

    fn title(&self) -> String {
        "Figure 3: cuDNN compute speedups (a) and vDNN degradation (b)".to_owned()
    }

    fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "per-version compute and vDNN performance",
            &["network", "cudnn", "speedup_vs_v1", "vdnn_performance"],
        );
        for r in &self.rows {
            t.row([
                r.network.as_str().into(),
                format!("{:?}", r.version).into(),
                Cell::Num(r.speedup_vs_v1),
                Cell::Num(r.vdnn_performance),
            ]);
        }
        vec![t]
    }

    fn notes(&self) -> Vec<String> {
        let v5: Vec<&Fig3Row> = self
            .rows
            .iter()
            .filter(|r| r.version == CudnnVersion::V5)
            .collect();
        if v5.is_empty() {
            return Vec::new();
        }
        let avg_speedup = v5.iter().map(|r| r.speedup_vs_v1).sum::<f64>() / v5.len() as f64;
        let avg_loss = 1.0 - v5.iter().map(|r| r.vdnn_performance).sum::<f64>() / v5.len() as f64;
        let worst_loss = 1.0
            - v5.iter()
                .map(|r| r.vdnn_performance)
                .fold(f64::INFINITY, f64::min);
        vec![
            format!("average v5 speedup over v1: {avg_speedup:.2}x (paper: 2.2x)"),
            format!(
                "v5 vDNN loss: average {:.1}% (paper 31%), worst {:.1}% (paper 52%)",
                avg_loss * 100.0,
                worst_loss * 100.0
            ),
        ]
    }
}

/// The paper's headline results, computed end-to-end.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Average ZVC compression ratio across networks (paper: 2.6×).
    pub avg_ratio: f64,
    /// Maximum per-layer ratio (paper: 13.8×).
    pub max_ratio: f64,
    /// Average cDMA-ZV performance improvement over vDNN (paper: 32%).
    pub avg_improvement: f64,
    /// Maximum improvement (paper: 61%).
    pub max_improvement: f64,
}

/// Computes the headline numbers (abstract / Section VII) on platform
/// `cfg`. Traffic comes from the context's memoized table, so ablation
/// sweeps that vary only the platform reuse every compression result.
pub fn headline(ctx: &Context, cfg: SystemConfig) -> Headline {
    let mut ratios = Vec::new();
    let mut max_ratio = 0f64;
    let mut improvements = Vec::new();
    let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
    for spec in ctx.specs() {
        let t = ctx.traffic(spec.name(), Algorithm::Zvc, Layout::Nchw);
        ratios.push(t.avg_ratio());
        max_ratio = max_ratio.max(t.max_layer_ratio());
        let vdnn = sim.normalized_performance(spec, TransferPolicy::uniform(spec, 1.0));
        let cdma = sim.normalized_performance(
            spec,
            TransferPolicy::OffloadAll(traffic::per_layer_ratios(&t)),
        );
        improvements.push(cdma / vdnn - 1.0);
    }
    Headline {
        avg_ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
        max_ratio,
        avg_improvement: improvements.iter().sum::<f64>() / improvements.len() as f64,
        max_improvement: improvements.iter().cloned().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_vdnn::RatioTable;

    fn ctx() -> Context {
        Context::with_table(RatioTable::build_fast(11))
    }

    fn all(f: impl Fn(&Context, &Runner, &ScenarioFilter) -> Vec<Fig11Row>) -> Vec<Fig11Row> {
        f(&ctx(), &Runner::sequential(), &ScenarioFilter::all())
    }

    #[test]
    fn fig11_has_all_cells() {
        let rows = all(|c, r, f| fig11(c, r, f).rows);
        assert_eq!(rows.len(), 6 * 3 * 3);
        assert!(rows
            .iter()
            .all(|r| r.avg_ratio > 0.5 && r.max_ratio >= r.avg_ratio));
    }

    #[test]
    fn fig11_zvc_layout_insensitivity() {
        let rows = all(|c, r, f| fig11(c, r, f).rows);
        for net in ["AlexNet", "VGG"] {
            let zv: Vec<&Fig11Row> = rows
                .iter()
                .filter(|r| r.network == net && r.algorithm == Algorithm::Zvc)
                .collect();
            let base = zv[0].avg_ratio;
            for r in &zv {
                assert!(
                    (r.avg_ratio - base).abs() / base < 0.05,
                    "{net} {}: {} vs {}",
                    r.layout,
                    r.avg_ratio,
                    base
                );
            }
        }
    }

    #[test]
    fn fig11_extension_rows_cover_every_cell() {
        let report = fig11(&ctx(), &Runner::sequential(), &ScenarioFilter::all());
        // 6 networks x 3 layouts x 2 extension codecs.
        assert_eq!(report.extended.len(), 6 * 3 * 2);
        for r in &report.extended {
            assert!(
                r.algorithm == Algorithm::Huff || r.algorithm == Algorithm::Adaptive,
                "{:?}",
                r.algorithm
            );
            assert!(r.avg_ratio > 0.5 && r.max_ratio >= r.avg_ratio);
        }
        // The adaptive picker stays competitive with the paper's best
        // single codec on every cell.
        for ext in report
            .extended
            .iter()
            .filter(|r| r.algorithm == Algorithm::Adaptive)
        {
            let best = report
                .rows
                .iter()
                .filter(|r| r.network == ext.network && r.layout == ext.layout)
                .map(|r| r.avg_ratio)
                .fold(f64::MIN, f64::max);
            assert!(
                ext.avg_ratio > 0.9 * best,
                "{} {}: adaptive {} vs best {}",
                ext.network,
                ext.layout,
                ext.avg_ratio,
                best
            );
        }
        // An algorithm filter that excludes the extensions empties the
        // companion table without touching the paper rows.
        let f = ScenarioFilter::all().algorithm(Algorithm::Zvc);
        let report = fig11(&ctx(), &Runner::sequential(), &f);
        assert!(report.extended.is_empty());
        assert_eq!(report.rows.len(), 6 * 3);
        assert_eq!(report.tables().len(), 1);
        // The converse — extensions only — keeps the companion table even
        // though no paper-grid scenario survives the filter.
        let f = ScenarioFilter::all()
            .network("AlexNet")
            .algorithm(Algorithm::Adaptive);
        let report = fig11(&ctx(), &Runner::sequential(), &f);
        assert!(report.rows.is_empty());
        assert_eq!(report.extended.len(), 3); // 3 layouts x 1 codec
        assert!(report
            .extended
            .iter()
            .all(|r| r.algorithm == Algorithm::Adaptive && r.network == "AlexNet"));
    }

    #[test]
    fn fig11_respects_the_filter() {
        let filter = ScenarioFilter::all()
            .network("AlexNet")
            .layout(Layout::Nchw);
        let rows = fig11(&ctx(), &Runner::sequential(), &filter).rows;
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.network == "AlexNet"));
    }

    #[test]
    fn fig12_zv_reduces_traffic_everywhere() {
        let rows = fig12(&ctx(), &Runner::sequential(), &ScenarioFilter::all()).rows;
        assert_eq!(rows.len(), 6 * 3);
        for r in rows.iter().filter(|r| r.algorithm == Algorithm::Zvc) {
            assert!(
                r.normalized_offload < 0.75,
                "{}: normalized {}",
                r.network,
                r.normalized_offload
            );
        }
    }

    #[test]
    fn fig13_ordering_vdnn_cdma_oracle() {
        let rows = fig13(&ctx(), &Runner::sequential(), &ScenarioFilter::all()).rows;
        for net in ["AlexNet", "SqueezeNet", "GoogLeNet"] {
            let get = |c: PerfConfig| {
                rows.iter()
                    .find(|r| r.network == net && r.config == c)
                    .map(|r| r.performance)
                    .unwrap()
            };
            let vdnn = get(PerfConfig::Vdnn);
            let zv = get(PerfConfig::Cdma(Algorithm::Zvc));
            assert!(vdnn <= zv, "{net}: vDNN {vdnn} vs ZV {zv}");
            assert!(zv <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fig03_speedups_and_degradation() {
        let rows = fig03(&ctx(), &Runner::sequential(), &ScenarioFilter::all()).rows;
        assert_eq!(rows.len(), 6 * 5);
        for r in &rows {
            assert!(r.speedup_vs_v1 >= 1.0 - 1e-9);
            assert!(r.vdnn_performance <= 1.0 + 1e-9);
        }
        // v5 speedup ~2.2x on average.
        let v5: Vec<&Fig3Row> = rows
            .iter()
            .filter(|r| r.version == CudnnVersion::V5)
            .collect();
        let avg = v5.iter().map(|r| r.speedup_vs_v1).sum::<f64>() / v5.len() as f64;
        assert!((1.9..2.6).contains(&avg), "avg {avg}");
    }

    #[test]
    fn headline_matches_paper_bands() {
        // Abstract: "average 2.6x (maximum 13.8x) compression ratio",
        // "average 32% (maximum 61%) performance improvement".
        let h = headline(&ctx(), SystemConfig::titan_x_pcie3());
        assert!(
            (2.0..3.2).contains(&h.avg_ratio),
            "avg ratio {} (paper 2.6)",
            h.avg_ratio
        );
        assert!(
            (8.0..32.0).contains(&h.max_ratio),
            "max ratio {} (paper 13.8)",
            h.max_ratio
        );
        assert!(
            (0.15..0.50).contains(&h.avg_improvement),
            "avg improvement {} (paper 0.32)",
            h.avg_improvement
        );
        assert!(
            (0.30..0.90).contains(&h.max_improvement),
            "max improvement {} (paper 0.61)",
            h.max_improvement
        );
    }

    #[test]
    fn parallel_grid_matches_sequential_bit_for_bit() {
        let c = ctx();
        let seq = fig11(&c, &Runner::sequential(), &ScenarioFilter::all()).rows;
        let par = fig11(&c, &Runner::with_jobs(4), &ScenarioFilter::all()).rows;
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.network, b.network);
            assert_eq!(a.avg_ratio.to_bits(), b.avg_ratio.to_bits());
            assert_eq!(a.max_ratio.to_bits(), b.max_ratio.to_bits());
        }
    }
}
