use cdma_compress::{windowed, Algorithm, Codec, CompressionStats, DecodeError};
use cdma_gpusim::{DmaPipeline, OffloadSim, OffloadSimResult, SystemConfig};
use cdma_tensor::Tensor;
use cdma_vdnn::timeline::prefetch_seconds;

/// The compressing DMA engine (Section V).
///
/// Wraps an algorithm choice and a platform configuration. Offloads
/// compress activation data in 4 KB windows (the paper's evaluation
/// window), then run the compressed line sizes through the discrete-event
/// DMA pipeline to obtain transfer timing under the engine's bandwidth
/// provisioning and buffer capacity.
///
/// The codec is statically dispatched ([`Codec`]) and every hot-path buffer
/// can be recycled across offloads: [`CdmaEngine::memcpy_compressed_reusing`]
/// reuses a previous copy's stream storage, and
/// [`CdmaEngine::memcpy_decompressed_into`] decompresses into a caller-owned
/// buffer — so a steady-state train loop performs no per-layer allocation.
#[derive(Debug, Clone, Copy)]
pub struct CdmaEngine {
    cfg: SystemConfig,
    algorithm: Algorithm,
    window_bytes: usize,
    /// Worker threads for window compression; 1 = sequential, 0 = one per
    /// available core (resolved by the compress crate's worker pool).
    threads: usize,
}

/// The result of a `cudaMemcpyCompressed()`-style offload: the compressed
/// payload plus byte accounting and simulated timing. The proposed API
/// "will be extended beyond the typical cudaMemcpy to also return the
/// compressed size of a region on completion" — that is
/// [`CompressedCopy::stats`].
#[derive(Debug, Clone)]
pub struct CompressedCopy {
    stream: windowed::WindowedStream,
    algorithm: Algorithm,
    /// Byte accounting (uncompressed vs on-wire bytes).
    pub stats: CompressionStats,
    /// Simulated offload timing through the DMA pipeline.
    pub transfer: OffloadSimResult,
}

impl CompressedCopy {
    /// Compressed bytes that crossed the link.
    pub fn wire_bytes(&self) -> usize {
        self.stream.compressed_bytes()
    }

    /// The algorithm that produced this copy.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The contiguous compressed stream (window payloads back to back).
    pub fn stream(&self) -> &windowed::WindowedStream {
        &self.stream
    }

    /// Per-window `(uncompressed, compressed)` line sizes — the DMA
    /// pipeline's native currency, and the payload of the timeline's
    /// measured fidelity level
    /// ([`cdma_vdnn::timeline::MeasuredStream`]).
    pub fn lines(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        stream_lines(&self.stream)
    }

    /// Consumes the copy and returns its stream so the buffers can be
    /// recycled via [`CdmaEngine::memcpy_compressed_reusing`].
    pub fn into_stream(self) -> windowed::WindowedStream {
        self.stream
    }
}

/// Per-window `(uncompressed, compressed)` line sizes of a stream — the
/// one place the line-table encoding (f32 elements × 4 bytes per window)
/// is spelled out.
fn stream_lines(stream: &windowed::WindowedStream) -> impl Iterator<Item = (u32, u32)> + '_ {
    stream
        .window_sizes()
        .enumerate()
        .map(|(i, c)| ((stream.window_elements(i) * 4) as u32, c as u32))
}

/// Reusable state for [`CdmaEngine::offload_into`]: one compressed-stream
/// buffer plus one persistent [`DmaPipeline`], both recycled across
/// offloads.
///
/// [`CdmaEngine::memcpy_compressed_reusing`] recycles the *stream*, but
/// still builds a fresh discrete-event pipeline per call, whose schedule
/// and in-flight queues regrow from empty every time — a steady
/// allocation drip that a long-running service (one offload per request,
/// thousands of requests per second) cannot afford. The scratch keeps the
/// pipeline alive and [`DmaPipeline::reset`]s it instead, so repeated
/// same-shape offloads allocate nothing (pinned by the workspace's
/// counting-allocator test).
#[derive(Debug, Clone)]
pub struct OffloadScratch {
    stream: windowed::WindowedStream,
    pipeline: DmaPipeline,
    cfg: SystemConfig,
}

impl OffloadScratch {
    /// Scratch bound to `engine`'s platform configuration.
    pub fn for_engine(engine: &CdmaEngine) -> Self {
        OffloadScratch {
            stream: windowed::WindowedStream::default(),
            pipeline: DmaPipeline::new(engine.cfg),
            cfg: engine.cfg,
        }
    }

    /// The compressed stream of the most recent
    /// [`CdmaEngine::offload_into`] call.
    pub fn stream(&self) -> &windowed::WindowedStream {
        &self.stream
    }
}

impl CdmaEngine {
    /// Creates an engine with an explicit algorithm.
    pub fn new(cfg: SystemConfig, algorithm: Algorithm) -> Self {
        CdmaEngine {
            cfg,
            algorithm,
            window_bytes: windowed::DEFAULT_WINDOW_BYTES,
            threads: 1,
        }
    }

    /// The paper's hardware design point: zero-value compression.
    pub fn zvc(cfg: SystemConfig) -> Self {
        CdmaEngine::new(cfg, Algorithm::Zvc)
    }

    /// Overrides the compression window (must be a positive multiple of
    /// 4 bytes; the paper studied 4 KB–64 KB and found little difference).
    pub fn with_window(mut self, window_bytes: usize) -> Self {
        assert!(
            window_bytes >= 4 && window_bytes.is_multiple_of(4),
            "window must be a positive multiple of 4 bytes"
        );
        self.window_bytes = window_bytes;
        self
    }

    /// Opts in to parallel window compression with up to `threads` workers
    /// (the software analogue of the engine's per-memory-controller
    /// compressor units), run on the compress crate's persistent worker
    /// pool. `threads == 0` resolves to one worker per available core —
    /// the same convention as
    /// [`windowed::WindowedStream::compress_parallel`]. Small transfers
    /// still compress sequentially; the compressed stream is bit-identical
    /// either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The platform configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The selected algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The statically-dispatched codec for the selected algorithm.
    pub fn codec(&self) -> Codec {
        self.algorithm.codec()
    }

    /// Offloads an activation buffer GPU→CPU with on-the-fly compression:
    /// the `cudaMemcpyCompressed()` analogue.
    pub fn memcpy_compressed(&self, data: &[f32]) -> CompressedCopy {
        self.memcpy_compressed_reusing(data, windowed::WindowedStream::default())
    }

    /// Like [`CdmaEngine::memcpy_compressed`], but recycles the stream of a
    /// finished copy ([`CompressedCopy::into_stream`]) so repeated layer
    /// offloads reuse the same compressed-byte buffer and offset table.
    pub fn memcpy_compressed_reusing(
        &self,
        data: &[f32],
        mut recycled: windowed::WindowedStream,
    ) -> CompressedCopy {
        self.compress_windows(data, &mut recycled);
        let stream = recycled;
        let stats = stream.stats();
        // Line table for the discrete-event pipeline, streamed straight off
        // the window-offset table — no per-offload size vector is built.
        let transfer = OffloadSim::new(self.cfg).run_line_iter(stream_lines(&stream));
        CompressedCopy {
            stream,
            algorithm: self.algorithm,
            stats,
            transfer,
        }
    }

    /// Offloads a tensor (its raw stream in its own layout).
    pub fn offload_tensor(&self, tensor: &Tensor) -> CompressedCopy {
        self.memcpy_compressed(tensor.as_slice())
    }

    /// Compresses `data` and returns only the byte accounting and the
    /// per-window `(uncompressed, compressed)` line table, skipping the
    /// transfer simulation — for callers that feed the lines into their own
    /// pipeline or timeline (e.g. `cdma_core::measured` building a
    /// [`cdma_vdnn::timeline::MeasuredStream`]) and would otherwise pay for
    /// a discrete-event run whose timing they discard.
    pub fn compress_lines(&self, data: &[f32]) -> (CompressionStats, Vec<(u32, u32)>) {
        let mut scratch = windowed::WindowedStream::default();
        let mut lines = Vec::new();
        let stats = self.compress_lines_into(data, &mut scratch, &mut lines);
        (stats, lines)
    }

    /// Streaming form of [`CdmaEngine::compress_lines`]: recompresses into
    /// the caller-owned `scratch` stream and rewrites `lines` in place
    /// (cleared first, capacity kept), so loops that build line tables —
    /// e.g. `cdma_core::measured` synthesizing one stream per layer —
    /// recycle one stream buffer and one line vector across all calls.
    pub fn compress_lines_into(
        &self,
        data: &[f32],
        scratch: &mut windowed::WindowedStream,
        lines: &mut Vec<(u32, u32)>,
    ) -> CompressionStats {
        self.compress_windows(data, scratch);
        lines.clear();
        lines.extend(stream_lines(scratch));
        scratch.stats()
    }

    /// The fully-recycled offload: compresses `data` into the scratch's
    /// stream and times the transfer on the scratch's persistent
    /// [`DmaPipeline`] (reset, not reallocated). Numerically identical to
    /// [`CdmaEngine::memcpy_compressed`] — same stream bytes, same
    /// [`OffloadSimResult`] — but with **zero** steady-state allocation,
    /// which makes it the entry point the `cdma-serve` request loop and
    /// any other per-request caller should use.
    ///
    /// If the scratch was built for a different platform configuration,
    /// its pipeline is rebuilt once (an allocation) and retained.
    pub fn offload_into(
        &self,
        data: &[f32],
        scratch: &mut OffloadScratch,
    ) -> (CompressionStats, OffloadSimResult) {
        if scratch.cfg != self.cfg {
            scratch.pipeline = DmaPipeline::new(self.cfg);
            scratch.cfg = self.cfg;
        }
        self.compress_windows(data, &mut scratch.stream);
        scratch.pipeline.reset();
        for (u, c) in stream_lines(&scratch.stream) {
            scratch.pipeline.push_line(0.0, u, c);
        }
        (scratch.stream.stats(), scratch.pipeline.result())
    }

    /// The one window-compression dispatch: recompresses `data` into
    /// `recycled` (cleared first), in parallel when opted in.
    fn compress_windows(&self, data: &[f32], recycled: &mut windowed::WindowedStream) {
        let codec = self.algorithm.codec();
        if self.threads == 1 {
            recycled.recompress(&codec, data, self.window_bytes);
        } else {
            // 0 (auto) and >1 both go to the pool-backed pipeline, which
            // resolves the auto convention and falls back sequentially for
            // small inputs.
            recycled.recompress_parallel(&codec, data, self.window_bytes, self.threads);
        }
    }

    /// The CPU→GPU prefetch direction: decompresses a copy back into
    /// activation words.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the stream is corrupt (a transfer
    /// fault).
    pub fn memcpy_decompressed(&self, copy: &CompressedCopy) -> Result<Vec<f32>, DecodeError> {
        let mut out = Vec::new();
        self.memcpy_decompressed_into(copy, &mut out)?;
        Ok(out)
    }

    /// Streaming prefetch: decompresses into a caller-owned buffer (cleared
    /// first), so per-layer prefetches in a training loop reuse one
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the stream is corrupt (a transfer
    /// fault); `out` is left unspecified on error.
    pub fn memcpy_decompressed_into(
        &self,
        copy: &CompressedCopy,
        out: &mut Vec<f32>,
    ) -> Result<(), DecodeError> {
        let codec = copy.algorithm.codec();
        copy.stream.decompress_into(&codec, out)
    }

    /// Estimated prefetch (CPU→GPU) time: the link moves the compressed
    /// bytes while the memory-controller engines decompress at their
    /// aggregate throughput, whichever is slower. Delegates to the
    /// timeline's [`prefetch_seconds`] — the single source of truth for the
    /// CPU→GPU direction.
    pub fn prefetch_time(&self, copy: &CompressedCopy) -> f64 {
        prefetch_seconds(
            &self.cfg,
            copy.stats.uncompressed_bytes,
            copy.stats.compressed_bytes,
        )
    }

    /// Speedup of this engine's offload over an uncompressed vDNN copy of
    /// the same data.
    pub fn offload_speedup(&self, copy: &CompressedCopy) -> f64 {
        let uncompressed_time = copy.stats.uncompressed_bytes as f64 / self.cfg.pcie_bw;
        uncompressed_time / copy.transfer.total_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_sparsity::ActivationGen;
    use cdma_tensor::{Layout, Shape4};

    fn sparse_data(density_pct: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (i * 2654435761) % 100 < density_pct {
                    (i % 97) as f32 + 0.5
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn memcpy_roundtrip_all_algorithms() {
        let data = sparse_data(40, 10_000);
        for alg in Algorithm::ALL {
            let engine = CdmaEngine::new(SystemConfig::titan_x_pcie3(), alg);
            let copy = engine.memcpy_compressed(&data);
            assert_eq!(engine.memcpy_decompressed(&copy).unwrap(), data, "{alg}");
            assert_eq!(copy.algorithm(), alg);
        }
    }

    #[test]
    fn sparse_data_offloads_faster() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let sparse = engine.memcpy_compressed(&sparse_data(20, 1 << 20));
        let dense = engine.memcpy_compressed(&sparse_data(100, 1 << 20));
        assert!(sparse.transfer.total_time < dense.transfer.total_time / 2.0);
        assert!(engine.offload_speedup(&sparse) > 2.0);
        assert!(engine.offload_speedup(&dense) < 1.1);
    }

    #[test]
    fn transfer_accounting_matches_stream() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let data = sparse_data(40, 100_000);
        let copy = engine.memcpy_compressed(&data);
        assert_eq!(copy.transfer.compressed_bytes, copy.wire_bytes() as u64);
        assert_eq!(copy.transfer.uncompressed_bytes, (data.len() * 4) as u64);
        assert_eq!(copy.stats.compressed_bytes, copy.wire_bytes() as u64);
    }

    #[test]
    fn parallel_offload_matches_sequential() {
        let data = sparse_data(35, 1 << 20); // 4 MB: above the parallel floor
        let cfg = SystemConfig::titan_x_pcie3();
        for alg in Algorithm::ALL {
            let seq = CdmaEngine::new(cfg, alg).memcpy_compressed(&data);
            // 0 = auto (one per core); explicit counts exercise the pool.
            for threads in [0usize, 4] {
                let par = CdmaEngine::new(cfg, alg)
                    .with_threads(threads)
                    .memcpy_compressed(&data);
                assert_eq!(seq.wire_bytes(), par.wire_bytes(), "{alg} x{threads}");
                assert_eq!(seq.transfer, par.transfer, "{alg} x{threads}");
                assert_eq!(
                    par.stream().as_bytes(),
                    seq.stream().as_bytes(),
                    "{alg} x{threads} parallel stream must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn recycled_offload_reuses_stream_and_matches() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let layer_a = sparse_data(40, 50_000);
        let layer_b = sparse_data(25, 50_000);
        let fresh_b = engine.memcpy_compressed(&layer_b);
        let copy_a = engine.memcpy_compressed(&layer_a);
        let recycled_b = engine.memcpy_compressed_reusing(&layer_b, copy_a.into_stream());
        assert_eq!(recycled_b.wire_bytes(), fresh_b.wire_bytes());
        assert_eq!(engine.memcpy_decompressed(&recycled_b).unwrap(), layer_b);
    }

    #[test]
    fn decompress_into_reuses_buffer_across_layers() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let mut out = Vec::new();
        for n in [10_000usize, 8_000, 12_000] {
            let data = sparse_data(30, n);
            let copy = engine.memcpy_compressed(&data);
            engine.memcpy_decompressed_into(&copy, &mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn offload_tensor_uses_raw_layout_stream() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let mut gen = ActivationGen::seeded(3);
        let t = gen.generate(Shape4::new(2, 16, 13, 13), Layout::Nchw, 0.3);
        let copy = engine.offload_tensor(&t);
        let back = engine.memcpy_decompressed(&copy).unwrap();
        assert_eq!(back, t.as_slice());
    }

    #[test]
    fn compress_lines_matches_full_memcpy() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let data = sparse_data(35, 40_000);
        let copy = engine.memcpy_compressed(&data);
        let (stats, lines) = engine.compress_lines(&data);
        assert_eq!(stats, copy.stats);
        assert_eq!(lines, copy.lines().collect::<Vec<_>>());
    }

    #[test]
    fn compress_lines_into_recycles_and_matches() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let mut scratch = windowed::WindowedStream::default();
        let mut lines = Vec::new();
        for n in [40_000usize, 30_000, 50_000] {
            let data = sparse_data(35, n);
            let (fresh_stats, fresh_lines) = engine.compress_lines(&data);
            let stats = engine.compress_lines_into(&data, &mut scratch, &mut lines);
            assert_eq!(stats, fresh_stats);
            assert_eq!(lines, fresh_lines);
        }
        // Steady state: a second same-sized pass allocates nothing.
        let data = sparse_data(35, 50_000);
        engine.compress_lines_into(&data, &mut scratch, &mut lines);
        let cap = lines.capacity();
        engine.compress_lines_into(&data, &mut scratch, &mut lines);
        assert_eq!(lines.capacity(), cap);
    }

    #[test]
    fn offload_into_matches_memcpy_compressed() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let mut scratch = OffloadScratch::for_engine(&engine);
        for n in [40_000usize, 25_000, 60_000] {
            let data = sparse_data(35, n);
            let fresh = engine.memcpy_compressed(&data);
            let (stats, transfer) = engine.offload_into(&data, &mut scratch);
            assert_eq!(stats, fresh.stats);
            assert_eq!(transfer, fresh.transfer);
            assert_eq!(scratch.stream().as_bytes(), fresh.stream().as_bytes());
        }
    }

    #[test]
    fn offload_into_rebinds_on_config_change() {
        let data = sparse_data(40, 30_000);
        let pcie = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let nvlink = CdmaEngine::zvc(SystemConfig::titan_x_nvlink());
        let mut scratch = OffloadScratch::for_engine(&pcie);
        pcie.offload_into(&data, &mut scratch);
        let (_, via_scratch) = nvlink.offload_into(&data, &mut scratch);
        assert_eq!(via_scratch, nvlink.memcpy_compressed(&data).transfer);
    }

    #[test]
    fn prefetch_is_link_bound_for_modest_ratios() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let copy = engine.memcpy_compressed(&sparse_data(40, 1 << 20));
        let t = engine.prefetch_time(&copy);
        let link_time = copy.stats.compressed_bytes as f64 / 12.8e9;
        assert!((t - link_time).abs() / link_time < 1e-6);
    }

    #[test]
    fn window_override_changes_nothing_for_zvc() {
        let data = sparse_data(40, 65_536);
        let cfg = SystemConfig::titan_x_pcie3();
        let a = CdmaEngine::zvc(cfg).memcpy_compressed(&data);
        let b = CdmaEngine::zvc(cfg)
            .with_window(16 * 1024)
            .memcpy_compressed(&data);
        assert_eq!(a.stats.compressed_bytes, b.stats.compressed_bytes);
    }

    #[test]
    fn empty_copy_is_trivial() {
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let copy = engine.memcpy_compressed(&[]);
        assert_eq!(copy.wire_bytes(), 0);
        assert_eq!(
            engine.memcpy_decompressed(&copy).unwrap(),
            Vec::<f32>::new()
        );
    }
}
