//! # cdma-core — the compressing DMA engine
//!
//! The paper's primary contribution as a library: a DMA engine that
//! compresses activation maps on their way out of GPU memory so that the
//! CPU–GPU interconnect carries 2–3× fewer bytes, turning vDNN's
//! PCIe-bound stalls back into fully-overlapped transfers.
//!
//! * [`CdmaEngine`] — the engine: pick an algorithm (ZVC is the hardware
//!   design point), call [`CdmaEngine::memcpy_compressed`] — the analogue
//!   of the proposed `cudaMemcpyCompressed()` CUDA API (Section V-D). The
//!   call compresses in 4 KB windows with the real codec, simulates the
//!   transfer through the discrete-event offload pipeline, and returns both
//!   the payload and the timing.
//! * [`measured`] — bridges real `cdma-dnn` training to the event-driven
//!   timeline: captures a training step's actual layer outputs through the
//!   engine (or synthesizes profiled activations at ImageNet scale) into a
//!   [`cdma_vdnn::timeline::MeasuredStream`].
//! * [`experiment`] — drivers that regenerate every table and figure of
//!   the paper's evaluation (dispatched by the `cdma-bench` CLI's
//!   `experiments` subcommand and exercised by the integration tests),
//!   including the fidelity sweep comparing the timeline's three transfer
//!   sources.
//!
//! ```
//! use cdma_core::CdmaEngine;
//! use cdma_gpusim::SystemConfig;
//!
//! let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
//! // 60%-sparse activations, as a ReLU layer would produce.
//! let data: Vec<f32> = (0..65536)
//!     .map(|i| if i % 5 < 3 { 0.0 } else { i as f32 })
//!     .collect();
//! let copy = engine.memcpy_compressed(&data);
//! assert!(copy.stats.ratio() > 2.0);
//! let back = engine.memcpy_decompressed(&copy).unwrap();
//! assert_eq!(back, data);
//! ```

#![deny(missing_docs)]

mod engine;
pub mod experiment;
pub mod measured;
pub mod report;
pub mod scenario;

pub use engine::{CdmaEngine, CompressedCopy, OffloadScratch};
pub use report::Report;
pub use scenario::{Context, Runner, Scenario, ScenarioFilter, ScenarioSet};
