//! # Measured transfer streams — real activations into the timeline
//!
//! The highest-fidelity level of the `cdma-vdnn` timeline wants *real*
//! per-window `(uncompressed, compressed)` line sizes, not assumed ratios.
//! This module produces [`MeasuredStream`]s two ways:
//!
//! * [`capture_training_step`] — the genuine article: runs one minibatch of
//!   a real `cdma-dnn` network through the [`Trainer`]'s offload hook,
//!   pushes every layer's actual output tensor through
//!   [`CdmaEngine::memcpy_compressed`], and collects the resulting line
//!   tables. This is the software analogue of cDMA sitting on the offload
//!   path during training.
//! * [`synthesized_stream`] — the scalable stand-in for ImageNet-scale
//!   networks that cannot be trained here: per layer, one image's worth of
//!   clustered activations is generated at the layer's profiled density,
//!   compressed for real, and the per-image line table is replicated across
//!   the minibatch (activations are i.i.d. across images in the
//!   generator, so the replication preserves the line-size distribution;
//!   window boundaries reset per image rather than spanning the batch
//!   buffer).

use cdma_compress::windowed::WindowedStream;
use cdma_dnn::Trainer;
use cdma_models::profiles::NetworkProfile;
use cdma_models::NetworkSpec;
use cdma_sparsity::ActivationGen;
use cdma_tensor::{Layout, Shape4, Tensor};
use cdma_vdnn::timeline::MeasuredStream;

use crate::CdmaEngine;

/// The measured record of one real training step.
#[derive(Debug, Clone)]
pub struct StepCapture {
    /// The minibatch loss of the captured step.
    pub loss: f64,
    /// Per-layer line tables (plus the input's), ready for the timeline.
    pub stream: MeasuredStream,
    /// Measured per-layer compression ratios (uncompressed / wire bytes).
    pub layer_ratios: Vec<f64>,
}

/// Runs one real training step of `trainer`, offloading every probed layer
/// output (and the input minibatch) through `engine`, and returns the
/// captured stream. `probe_names[i]` names the `cdma-dnn` layer whose
/// output is spec layer `i`'s activation map (e.g.
/// [`cdma_models::tiny::TINY_ALEXNET_PROBES`]).
///
/// # Panics
///
/// Panics if `probe_names` does not match the spec's layer count, or if a
/// probed layer never fires during the forward pass.
pub fn capture_training_step(
    trainer: &mut Trainer,
    engine: &CdmaEngine,
    images: &Tensor,
    labels: &[usize],
    spec: &NetworkSpec,
    probe_names: &[&str],
) -> StepCapture {
    assert_eq!(
        probe_names.len(),
        spec.layers().len(),
        "one probe layer per spec layer required"
    );
    let (_, input) = engine.compress_lines(images.as_slice());

    let mut per_layer: Vec<Option<Vec<(u32, u32)>>> = vec![None; probe_names.len()];
    let mut ratios: Vec<f64> = vec![0.0; probe_names.len()];
    let loss = trainer.train_step_probed(images, labels, &mut |name, _, out| {
        if let Some(i) = probe_names.iter().position(|p| *p == name) {
            let (stats, lines) = engine.compress_lines(out.as_slice());
            ratios[i] = stats.ratio();
            per_layer[i] = Some(lines);
        }
    });

    let layers = per_layer
        .into_iter()
        .enumerate()
        .map(|(i, lines)| {
            lines.unwrap_or_else(|| panic!("probe layer {} never fired", probe_names[i]))
        })
        .collect();
    StepCapture {
        loss,
        stream: MeasuredStream::new(input, layers),
        layer_ratios: ratios,
    }
}

/// Synthesizes a measured stream for an ImageNet-scale [`NetworkSpec`] at
/// training checkpoint `t`, with activations laid out NCHW (ZVC is
/// layout-insensitive; use [`synthesized_stream_with_layout`] when
/// sweeping layout-sensitive codecs): per layer, one image's clustered
/// activations at the profiled density are compressed through `engine`
/// and the per-image line table is replicated across the minibatch (see
/// the module docs for the fidelity caveat). The input is generated
/// dense.
///
/// # Panics
///
/// Panics if `profile` does not cover every layer of `spec`.
pub fn synthesized_stream(
    engine: &CdmaEngine,
    spec: &NetworkSpec,
    profile: &NetworkProfile,
    t: f64,
    seed: u64,
) -> MeasuredStream {
    synthesized_stream_with_layout(engine, spec, profile, Layout::Nchw, t, seed)
}

/// [`synthesized_stream`] with an explicit activation memory layout — the
/// layout the clustered activations are generated in, which is what
/// layout-sensitive codecs (RLE, zlib) see on the wire.
///
/// # Panics
///
/// Panics if `profile` does not cover every layer of `spec`.
pub fn synthesized_stream_with_layout(
    engine: &CdmaEngine,
    spec: &NetworkSpec,
    profile: &NetworkProfile,
    layout: Layout,
    t: f64,
    seed: u64,
) -> MeasuredStream {
    let mut gen = ActivationGen::seeded(seed);
    let batch = spec.batch();
    // One compressed-stream scratch buffer and one per-image line table,
    // recycled across every layer of the synthesis loop — the per-layer
    // cost is the word-at-a-time ZVC kernels plus one memcpy, nothing else.
    let mut scratch = WindowedStream::default();
    let mut per_image: Vec<(u32, u32)> = Vec::new();
    let mut replicate = |tensor: &Tensor| -> Vec<(u32, u32)> {
        engine.compress_lines_into(tensor.as_slice(), &mut scratch, &mut per_image);
        let mut lines = Vec::with_capacity(per_image.len() * batch);
        for _ in 0..batch {
            lines.extend_from_slice(&per_image);
        }
        lines
    };

    let input = replicate(&gen.generate(spec.input(), layout, 1.0));
    let layers = spec
        .layers()
        .iter()
        .map(|layer| {
            let density = profile
                .trajectory(&layer.name)
                .unwrap_or_else(|| panic!("profile missing layer {}", layer.name))
                .density_at(t);
            let shape = Shape4::new(1, layer.out.c, layer.out.h, layer.out.w);
            replicate(&gen.generate(shape, layout, density))
        })
        .collect();
    MeasuredStream::new(input, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_dnn::synthetic::SyntheticImages;
    use cdma_dnn::Sgd;
    use cdma_gpusim::SystemConfig;
    use cdma_models::{profiles, tiny, zoo};

    #[test]
    fn captured_stream_matches_spec_accounting() {
        let batch = 8;
        let spec = tiny::tiny_alexnet_spec(4, batch);
        let mut data = SyntheticImages::new(4, 1, 16, 5);
        let mut trainer = Trainer::new(tiny::tiny_alexnet(4, 9), Sgd::new(0.03, 0.9, 1e-4));
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let (x, y) = data.batch(batch);
        let cap = capture_training_step(
            &mut trainer,
            &engine,
            &x,
            &y,
            &spec,
            &tiny::TINY_ALEXNET_PROBES,
        );
        assert!(cap.loss.is_finite());
        assert_eq!(cap.stream.layer_count(), spec.layers().len());
        // The real net's activation byte counts equal the spec's.
        for (i, layer) in spec.layers().iter().enumerate() {
            let (u, c): (u64, u64) = cap
                .stream
                .layer_lines(i)
                .iter()
                .fold((0, 0), |(u, c), &(lu, lc)| (u + lu as u64, c + lc as u64));
            assert_eq!(u, layer.activation_bytes(batch), "{}", layer.name);
            assert!(c > 0);
        }
        // ReLU outputs compress; every ratio is sane.
        assert!(cap.layer_ratios.iter().all(|&r| r > 0.5));
        assert!(
            cap.layer_ratios[..4].iter().any(|&r| r > 1.2),
            "some ReLU/pool layer should compress: {:?}",
            cap.layer_ratios
        );
    }

    #[test]
    fn synthesized_stream_covers_every_layer_and_scales_with_batch() {
        let spec = zoo::alexnet();
        let profile = profiles::density_profile(&spec);
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let stream = synthesized_stream(&engine, &spec, &profile, 0.5, 7);
        assert_eq!(stream.layer_count(), spec.layers().len());
        assert_eq!(
            stream.total_uncompressed(),
            spec.total_activation_bytes() + (spec.input().per_image() * spec.batch() * 4) as u64
        );
        assert!(stream.total_compressed() < stream.total_uncompressed());
    }
}
