//! # Machine-readable experiment reports
//!
//! Every experiment driver returns a typed value implementing [`Report`]:
//! a named collection of [`Table`]s (plus free-form notes and optional
//! binary artifacts such as the Fig. 5 PGM images). One report renders to
//! three formats through [`render`]:
//!
//! * **text** — aligned human-readable tables, as printed by
//!   `cdma-bench experiments <name>` without `--format`;
//! * **csv** — one header + data block per table, RFC-4180-style quoting;
//! * **json** — a hand-rolled, escape-correct writer (this workspace
//!   builds offline, so there is no serde). Key order is fixed by the
//!   writer, non-finite numbers render as `null`, and numbers use Rust's
//!   shortest-round-trip formatting — so the same report always renders to
//!   byte-identical output.

use std::fmt::Write as _;

/// One value of a report table: a string, a float, or an integer.
///
/// Keeping the numeric cells numeric (instead of pre-formatting strings,
/// as the deleted per-figure drivers did) is what makes the CSV/JSON
/// renderings machine-readable and the golden tests bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A text cell.
    Str(String),
    /// A float cell. Non-finite values render as `null` in JSON and as an
    /// empty field in CSV (the explicit NaN/inf policy of the writers).
    Num(f64),
    /// An integer cell.
    Int(i64),
}

impl Cell {
    /// Human-readable rendering (text tables): floats print with at most
    /// four decimals, trailing zeros trimmed.
    pub fn text(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Num(v) if !v.is_finite() => format!("{v}"),
            Cell::Num(v) => {
                let s = format!("{v:.4}");
                let s = s.trim_end_matches('0').trim_end_matches('.');
                if s.is_empty() || s == "-" {
                    "0".to_owned()
                } else {
                    s.to_owned()
                }
            }
            Cell::Int(v) => v.to_string(),
        }
    }

    /// Exact machine rendering shared by CSV and JSON: shortest
    /// round-trip float formatting; non-finite floats map to `None`.
    fn machine(&self) -> Option<String> {
        match self {
            Cell::Str(s) => Some(s.clone()),
            Cell::Num(v) if !v.is_finite() => None,
            Cell::Num(v) => Some(format!("{v}")),
            Cell::Int(v) => Some(v.to_string()),
        }
    }

    /// JSON rendering of this cell (strings escaped, `NaN`/`±inf` →
    /// `null`).
    pub fn json(&self) -> String {
        match self {
            Cell::Str(s) => json_string(s),
            other => other.machine().unwrap_or_else(|| "null".to_owned()),
        }
    }

    /// CSV rendering of this cell (quoted when needed, `NaN`/`±inf` →
    /// empty field).
    pub fn csv(&self) -> String {
        self.machine().as_deref().map(csv_field).unwrap_or_default()
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_owned())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(i64::try_from(v).expect("report integer fits i64"))
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(i64::try_from(v).expect("report integer fits i64"))
    }
}

/// Escapes `s` as a JSON string literal (including the surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters use the
/// short forms where JSON has them and `\u00XX` otherwise.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Quotes `s` as one CSV field: fields containing commas, quotes or line
/// breaks are wrapped in double quotes with embedded quotes doubled.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// One titled table of a report: named columns plus uniform-width rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with static column names.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table::with_columns(title, columns.iter().map(|c| (*c).to_owned()).collect())
    }

    /// Creates an empty table with computed column names (e.g. one column
    /// per training checkpoint).
    pub fn with_columns(title: &str, columns: Vec<String>) -> Self {
        Table {
            title: title.to_owned(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn row<I: IntoIterator<Item = Cell>>(&mut self, cells: I) {
        let row: Vec<Cell> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {:?}: row width {} != {} columns",
            self.title,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Renders the table as aligned text.
    pub fn render_text(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::text).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (h, w) in self.columns.iter().zip(&widths) {
            let _ = write!(line, "{h:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &cells {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Renders the table as a CSV block (header row + data rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_field(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let fields: Vec<String> = row.iter().map(Cell::csv).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as one JSON object (fixed key order: `title`,
    /// `columns`, `rows`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&cell.json());
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// A binary side-product of an experiment (e.g. one Fig. 5 PGM image),
/// written to disk by the CLI's `--out` mode.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// File name relative to the experiment's output directory.
    pub name: String,
    /// Raw file contents.
    pub bytes: Vec<u8>,
}

/// The common interface of every experiment result: a machine id, a human
/// title, tables, and optional notes/artifacts. Render one with
/// [`render`] (or [`render_text`] / [`render_csv`] / [`render_json`]).
pub trait Report {
    /// Stable machine name (the CLI experiment name, e.g. `"fig11"`).
    fn name(&self) -> &'static str;

    /// Human-readable title.
    fn title(&self) -> String;

    /// The report's tables.
    fn tables(&self) -> Vec<Table>;

    /// Free-form commentary lines (paper comparisons, ASCII charts).
    fn notes(&self) -> Vec<String> {
        Vec::new()
    }

    /// Binary artifacts to write alongside the report.
    fn artifacts(&self) -> Vec<Artifact> {
        Vec::new()
    }
}

/// Output format of a rendered report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned human-readable tables.
    Text,
    /// One CSV block per table.
    Csv,
    /// One JSON object per report.
    Json,
}

impl Format {
    /// Conventional file extension for the format.
    pub fn extension(&self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" | "txt" => Ok(Format::Text),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format {other:?} (expected text|csv|json)")),
        }
    }
}

/// Renders a report in the requested format.
pub fn render(report: &dyn Report, format: Format) -> String {
    match format {
        Format::Text => render_text(report),
        Format::Csv => render_csv(report),
        Format::Json => render_json(report),
    }
}

/// Renders a report as human-readable text: a banner, each table aligned,
/// then the notes.
pub fn render_text(report: &dyn Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} [{}] ===", report.title(), report.name());
    for table in report.tables() {
        let _ = writeln!(out, "\n-- {} --", table.title());
        out.push_str(&table.render_text());
    }
    let notes = report.notes();
    if !notes.is_empty() {
        out.push('\n');
        for note in notes {
            let _ = writeln!(out, "{note}");
        }
    }
    out
}

/// Renders a report as CSV: each table as a `# <report>: <table>` comment
/// line followed by its header + data block, blocks separated by blank
/// lines. Notes and artifacts are omitted.
pub fn render_csv(report: &dyn Report) -> String {
    let mut out = String::new();
    for (i, table) in report.tables().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "# {}: {}", report.name(), table.title());
        out.push_str(&table.render_csv());
    }
    out
}

/// Renders a report as one JSON object with fixed key order:
/// `experiment`, `title`, `tables`, `notes`, `artifacts` (artifact names
/// only; bytes are written separately by the CLI).
pub fn render_json(report: &dyn Report) -> String {
    let mut out = String::new();
    out.push_str("{\"experiment\":");
    out.push_str(&json_string(report.name()));
    out.push_str(",\"title\":");
    out.push_str(&json_string(&report.title()));
    out.push_str(",\"tables\":[");
    for (i, table) in report.tables().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&table.render_json());
    }
    out.push_str("],\"notes\":[");
    for (i, note) in report.notes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(note));
    }
    out.push_str("],\"artifacts\":[");
    for (i, artifact) in report.artifacts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&artifact.name));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sample;

    impl Report for Sample {
        fn name(&self) -> &'static str {
            "sample"
        }

        fn title(&self) -> String {
            "A \"sample\" report".to_owned()
        }

        fn tables(&self) -> Vec<Table> {
            let mut t = Table::new("cells", &["name", "ratio", "count"]);
            t.row(["plain, quoted".into(), Cell::Num(2.6), 32u64.into()]);
            t.row(["n\nl".into(), Cell::Num(f64::NAN), Cell::Int(-1)]);
            vec![t]
        }

        fn notes(&self) -> Vec<String> {
            vec!["line\twith\ttabs".to_owned()]
        }
    }

    #[test]
    fn json_escapes_and_nan_policy() {
        let json = render_json(&Sample);
        assert!(json.contains("\"A \\\"sample\\\" report\""));
        assert!(json.contains("\"plain, quoted\""));
        assert!(json.contains("\"n\\nl\""));
        assert!(json.contains("[\"n\\nl\",null,-1]"));
        assert!(json.contains("\"line\\twith\\ttabs\""));
        // No raw control characters survive.
        assert!(json.chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn json_string_escapes_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("\u{8}\u{c}"), "\"\\b\\f\"");
        assert_eq!(json_string("\\\""), "\"\\\\\\\"\"");
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        let csv = render_csv(&Sample);
        assert!(csv.starts_with("# sample: cells\nname,ratio,count\n"));
        assert!(csv.contains("\"plain, quoted\",2.6,32\n"));
        // NaN renders as an empty field.
        assert!(csv.contains("\"n\nl\",,-1\n"));
    }

    #[test]
    fn text_renders_aligned_and_trims_float_noise() {
        assert_eq!(Cell::Num(2.6000).text(), "2.6");
        assert_eq!(Cell::Num(13.8).text(), "13.8");
        assert_eq!(Cell::Num(0.0).text(), "0");
        assert_eq!(Cell::Num(1.0 / 3.0).text(), "0.3333");
        let text = render_text(&Sample);
        assert!(text.starts_with("=== A \"sample\" report [sample] ===\n"));
        assert!(text.contains("-- cells --"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Cell::Num(v).json(), "null");
            assert_eq!(Cell::Num(v).csv(), "");
        }
        assert_eq!(Cell::Num(1.5).json(), "1.5");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["only-one".into()]);
    }
}
