//! # The declarative scenario API
//!
//! The paper's evaluation (Section VII) is a grid: network × activation
//! layout × compression algorithm × timeline fidelity × system
//! configuration. This module makes one cell of that grid a first-class
//! value — a [`Scenario`] — and gives the experiment layer three tools
//! around it:
//!
//! * [`ScenarioSet`] — cartesian sweep builders ([`ScenarioSet::builder`])
//!   plus the canonical [`ScenarioSet::paper_grid`] (every zoo network ×
//!   every layout × every algorithm) that Fig. 11/12/13 and the traffic
//!   drivers used to re-implement as copy-pasted triple loops;
//! * [`Context`] — a thread-safe memo of the expensive shared inputs
//!   (network specs, density profiles, the measured [`RatioTable`],
//!   per-cell [`NetworkTraffic`], synthesized measured streams), so a
//!   sweep computes each intermediate once instead of once per cell —
//!   and [`Context::transfer_source`] is the *single* call site that
//!   turns a scenario's [`Fidelity`] value into a live
//!   [`FidelitySource`];
//! * [`Runner`] — order-preserving scoped-thread fan-out of a set's
//!   scenarios across `--jobs` workers. Results come back in scenario
//!   order regardless of completion order, so parallel sweeps stay
//!   byte-deterministic.
//!
//! ```
//! use cdma_core::scenario::{Context, Runner, ScenarioSet};
//!
//! let ctx = Context::fast(); // coarse ratio table, fine for examples
//! let runner = Runner::with_jobs(2);
//! let grid = ScenarioSet::paper_grid();
//! assert_eq!(grid.len(), 6 * 3 * 3);
//! let ratios = runner.run(&grid, |s| {
//!     ctx.traffic(&s.network, s.algorithm, s.layout).avg_ratio()
//! });
//! assert_eq!(ratios.len(), grid.len());
//! assert!(ratios.iter().all(|&r| r > 0.5));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cdma_compress::Algorithm;
use cdma_gpusim::SystemConfig;
use cdma_infer::InferEngine;
use cdma_models::profiles::{self, NetworkProfile};
use cdma_models::{zoo, NetworkSpec};
use cdma_tensor::Layout;
use cdma_vdnn::timeline::MeasuredStream;
use cdma_vdnn::traffic::{self, NetworkTraffic};
use cdma_vdnn::{
    FabricShape, Fidelity, FidelitySource, LinkPolicy, ProfiledDensity, RatioTable, Tenancy,
    UniformRatio,
};

use crate::measured;
use crate::CdmaEngine;

/// One cell of the evaluation grid: which network, under which layout,
/// algorithm, fidelity level, training checkpoint, seed and platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Zoo network name (e.g. `"AlexNet"`).
    pub network: String,
    /// Activation memory layout.
    pub layout: Layout,
    /// Compression algorithm.
    pub algorithm: Algorithm,
    /// Timeline fidelity level.
    pub fidelity: Fidelity,
    /// Training checkpoint in `[0, 1]` (used by the profiled and measured
    /// levels).
    pub checkpoint: f64,
    /// Seed for synthesized activations.
    pub seed: u64,
    /// Platform configuration.
    pub config: SystemConfig,
    /// Data-parallel GPU count sharing the host link (1 = the dedicated
    /// single-GPU platform of the core figures).
    pub gpus: usize,
    /// Shared-link arbitration policy (only observable when `gpus > 1` or
    /// tenants share the link).
    pub link_policy: LinkPolicy,
    /// Inference engine (only observable in the inference experiments;
    /// the training figures run at the `Dense` default).
    pub engine: InferEngine,
    /// Inference batch size (batch 1 = latency-bound serving; the
    /// training figures use the network's own minibatch and ignore this).
    pub batch: usize,
    /// Fabric topology (only observable in the datacenter experiments;
    /// everything else runs on the [`FabricShape::Flat`] default).
    pub fabric: FabricShape,
    /// Tenancy model (static residents by default; churn runs a
    /// trace-driven arrival/departure schedule).
    pub tenancy: Tenancy,
}

impl Scenario {
    /// A compact human-readable label (`AlexNet/NCHW/ZV@0.5`, with an
    /// ` x4` suffix on multi-GPU cells and a `csc+act b32` suffix on
    /// non-default inference cells — default axes stay invisible so
    /// every pre-inference golden label is unchanged).
    pub fn label(&self) -> String {
        let mut base = format!(
            "{}/{}/{}@{}",
            self.network,
            self.layout,
            self.algorithm.label(),
            self.checkpoint
        );
        if self.gpus > 1 {
            base = format!("{base} x{}", self.gpus);
        }
        if self.engine != InferEngine::Dense {
            base = format!("{base} {}", self.engine.label());
        }
        if self.batch != 1 {
            base = format!("{base} b{}", self.batch);
        }
        if self.fabric != FabricShape::Flat {
            base = format!("{base} {}", self.fabric.label());
        }
        if self.tenancy != Tenancy::Static {
            base = format!("{base} {}", self.tenancy.label());
        }
        base
    }
}

/// An ordered collection of scenarios — the unit a [`Runner`] executes.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Starts a cartesian sweep builder with the workspace defaults: all
    /// six zoo networks, NCHW, ZVC, profiled-density fidelity, checkpoint
    /// 0.5, seed 42, the Titan X / PCIe 3 platform.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The canonical Fig. 11 grid — every zoo network × every layout ×
    /// every algorithm — in the row order of the paper's figures
    /// (network-major, then layout, then algorithm). This replaces the
    /// triple loop that `fig11`/`fig12`/`fig13` and the traffic drivers
    /// each had a private copy of.
    pub fn paper_grid() -> Self {
        ScenarioSet::builder()
            .layouts(Layout::ALL)
            .algorithms(Algorithm::ALL)
            .build()
    }

    /// Wraps an explicit scenario list.
    pub fn from_vec(scenarios: Vec<Scenario>) -> Self {
        ScenarioSet { scenarios }
    }

    /// Keeps only the scenarios matching `filter`.
    pub fn filtered(mut self, filter: &ScenarioFilter) -> Self {
        self.scenarios.retain(|s| filter.matches(s));
        self
    }

    /// The scenarios, in sweep order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty (e.g. after an over-restrictive filter).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The distinct network names, in first-appearance order.
    pub fn networks(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for s in &self.scenarios {
            if !names.contains(&s.network) {
                names.push(s.network.clone());
            }
        }
        names
    }
}

impl<'a> IntoIterator for &'a ScenarioSet {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

/// Cartesian sweep builder for [`ScenarioSet`]: the product of every
/// axis, nested network → layout → algorithm → fidelity → checkpoint →
/// GPU count → link policy.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    networks: Vec<String>,
    layouts: Vec<Layout>,
    algorithms: Vec<Algorithm>,
    fidelities: Vec<Fidelity>,
    checkpoints: Vec<f64>,
    seed: u64,
    config: SystemConfig,
    gpu_counts: Vec<usize>,
    link_policies: Vec<LinkPolicy>,
    engines: Vec<InferEngine>,
    batches: Vec<usize>,
    fabrics: Vec<FabricShape>,
    tenancies: Vec<Tenancy>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            networks: zoo::all_networks()
                .iter()
                .map(|s| s.name().to_owned())
                .collect(),
            layouts: vec![Layout::Nchw],
            algorithms: vec![Algorithm::Zvc],
            fidelities: vec![Fidelity::ProfiledDensity],
            checkpoints: vec![0.5],
            seed: 42,
            config: SystemConfig::titan_x_pcie3(),
            gpu_counts: vec![1],
            link_policies: vec![LinkPolicy::BandwidthShare],
            engines: vec![InferEngine::Dense],
            batches: vec![1],
            fabrics: vec![FabricShape::Flat],
            tenancies: vec![Tenancy::Static],
        }
    }
}

impl ScenarioBuilder {
    /// Restricts the network axis.
    pub fn networks<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.networks = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the layout axis.
    pub fn layouts<I: IntoIterator<Item = Layout>>(mut self, layouts: I) -> Self {
        self.layouts = layouts.into_iter().collect();
        self
    }

    /// Sets the algorithm axis.
    pub fn algorithms<I: IntoIterator<Item = Algorithm>>(mut self, algorithms: I) -> Self {
        self.algorithms = algorithms.into_iter().collect();
        self
    }

    /// Sets the fidelity axis.
    pub fn fidelities<I: IntoIterator<Item = Fidelity>>(mut self, fidelities: I) -> Self {
        self.fidelities = fidelities.into_iter().collect();
        self
    }

    /// Sets the training-checkpoint axis.
    pub fn checkpoints<I: IntoIterator<Item = f64>>(mut self, checkpoints: I) -> Self {
        self.checkpoints = checkpoints.into_iter().collect();
        self
    }

    /// Sets the activation-synthesis seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the platform configuration.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the data-parallel GPU-count axis (the Section IX sweep passes
    /// `[1, 2, 4, 8]`).
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .gpu_counts([1, 2, 4, 8])
    ///     .build();
    /// assert_eq!(set.len(), 4);
    /// assert_eq!(set.scenarios()[3].gpus, 8);
    /// assert!(set.scenarios()[3].label().ends_with("x8"));
    /// ```
    pub fn gpu_counts<I: IntoIterator<Item = usize>>(mut self, gpus: I) -> Self {
        self.gpu_counts = gpus.into_iter().collect();
        self
    }

    /// Sets the shared-link arbitration-policy axis.
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    /// use cdma_vdnn::LinkPolicy;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .gpu_counts([4])
    ///     .link_policies(LinkPolicy::ALL)
    ///     .build();
    /// assert_eq!(set.len(), 2);
    /// assert_eq!(set.scenarios()[0].link_policy, LinkPolicy::BandwidthShare);
    /// assert_eq!(set.scenarios()[1].link_policy.label(), "round-robin");
    /// ```
    pub fn link_policies<I: IntoIterator<Item = LinkPolicy>>(mut self, policies: I) -> Self {
        self.link_policies = policies.into_iter().collect();
        self
    }

    /// Sets the inference-engine axis (the `fig_inference` sweep passes
    /// [`InferEngine::ALL`]).
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    /// use cdma_infer::InferEngine;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .engines(InferEngine::ALL)
    ///     .build();
    /// assert_eq!(set.len(), 3);
    /// assert_eq!(set.scenarios()[2].engine, InferEngine::CscAct);
    /// assert!(set.scenarios()[2].label().ends_with("csc+act"));
    /// ```
    pub fn engines<I: IntoIterator<Item = InferEngine>>(mut self, engines: I) -> Self {
        self.engines = engines.into_iter().collect();
        self
    }

    /// Sets the inference batch-size axis (batch 1 = latency-bound,
    /// larger = throughput-bound serving).
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .batches([1, 32])
    ///     .build();
    /// assert_eq!(set.len(), 2);
    /// assert_eq!(set.scenarios()[1].batch, 32);
    /// assert!(set.scenarios()[1].label().ends_with("b32"));
    /// ```
    pub fn batches<I: IntoIterator<Item = usize>>(mut self, batches: I) -> Self {
        self.batches = batches.into_iter().collect();
        self
    }

    /// Sets the fabric-shape axis (the `fig_datacenter` sweep passes
    /// [`FabricShape::ALL`]).
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    /// use cdma_vdnn::FabricShape;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .fabrics(FabricShape::ALL)
    ///     .build();
    /// assert_eq!(set.len(), 2);
    /// assert_eq!(set.scenarios()[0].fabric, FabricShape::Flat);
    /// assert!(set.scenarios()[1].label().ends_with("node8"));
    /// ```
    pub fn fabrics<I: IntoIterator<Item = FabricShape>>(mut self, fabrics: I) -> Self {
        self.fabrics = fabrics.into_iter().collect();
        self
    }

    /// Sets the tenancy axis (static residents vs trace-driven churn).
    ///
    /// ```
    /// use cdma_core::scenario::ScenarioSet;
    /// use cdma_vdnn::Tenancy;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .tenancies(Tenancy::ALL)
    ///     .build();
    /// assert_eq!(set.len(), 2);
    /// assert!(set.scenarios()[1].label().ends_with("churn"));
    /// ```
    pub fn tenancies<I: IntoIterator<Item = Tenancy>>(mut self, tenancies: I) -> Self {
        self.tenancies = tenancies.into_iter().collect();
        self
    }

    /// Materializes the cartesian product.
    pub fn build(self) -> ScenarioSet {
        let mut scenarios = Vec::with_capacity(
            self.networks.len()
                * self.layouts.len()
                * self.algorithms.len()
                * self.fidelities.len()
                * self.checkpoints.len()
                * self.gpu_counts.len()
                * self.link_policies.len()
                * self.engines.len()
                * self.batches.len()
                * self.fabrics.len()
                * self.tenancies.len(),
        );
        for network in &self.networks {
            for &layout in &self.layouts {
                for &algorithm in &self.algorithms {
                    for &fidelity in &self.fidelities {
                        for &checkpoint in &self.checkpoints {
                            for &gpus in &self.gpu_counts {
                                for &link_policy in &self.link_policies {
                                    for &engine in &self.engines {
                                        for &batch in &self.batches {
                                            for &fabric in &self.fabrics {
                                                for &tenancy in &self.tenancies {
                                                    scenarios.push(Scenario {
                                                        network: network.clone(),
                                                        layout,
                                                        algorithm,
                                                        fidelity,
                                                        checkpoint,
                                                        seed: self.seed,
                                                        config: self.config,
                                                        gpus,
                                                        link_policy,
                                                        engine,
                                                        batch,
                                                        fabric,
                                                        tenancy,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        ScenarioSet { scenarios }
    }
}

/// A conjunction of per-axis allow-lists parsed from the CLI's
/// `--filter key=value` arguments. An empty axis matches everything.
#[derive(Debug, Clone, Default)]
pub struct ScenarioFilter {
    networks: Vec<String>,
    layouts: Vec<Layout>,
    algorithms: Vec<Algorithm>,
    engines: Vec<InferEngine>,
    batches: Vec<usize>,
    fabrics: Vec<FabricShape>,
    tenancies: Vec<Tenancy>,
}

impl ScenarioFilter {
    /// The match-everything filter.
    pub fn all() -> Self {
        ScenarioFilter::default()
    }

    /// Parses filter specs of the form `net=AlexNet,VGG`, `layout=nchw`,
    /// `alg=zv`, `engine=csc`, `batch=32`. Keys may repeat; values are
    /// comma-separated and case-insensitive. Every value is validated — a
    /// typo'd network name errors here instead of silently filtering
    /// every sweep to empty.
    ///
    /// The inference axes round-trip through the same labels the
    /// scenarios print:
    ///
    /// ```
    /// use cdma_core::scenario::{ScenarioFilter, ScenarioSet};
    /// use cdma_infer::InferEngine;
    ///
    /// let set = ScenarioSet::builder()
    ///     .networks(["AlexNet"])
    ///     .engines(InferEngine::ALL)
    ///     .batches([1, 32])
    ///     .build();
    /// let filter = ScenarioFilter::parse(&["engine=csc+act", "batch=32"]).unwrap();
    /// let hits: Vec<_> = set.scenarios().iter().filter(|s| filter.matches(s)).collect();
    /// assert_eq!(hits.len(), 1);
    /// assert_eq!(hits[0].engine, InferEngine::CscAct);
    /// assert_eq!(hits[0].batch, 32);
    /// // ...and the label suffix parses back as a filter value.
    /// let suffix = hits[0].label();
    /// let engine_label = InferEngine::CscAct.label();
    /// assert!(suffix.contains(engine_label));
    /// assert!(ScenarioFilter::parse(&[format!("engine={engine_label}")]).is_ok());
    /// ```
    pub fn parse<S: AsRef<str>>(specs: &[S]) -> Result<Self, String> {
        let mut filter = ScenarioFilter::default();
        for spec in specs {
            let spec = spec.as_ref();
            let (key, values) = spec
                .split_once('=')
                .ok_or_else(|| format!("filter {spec:?} is not key=value"))?;
            for value in values.split(',').filter(|v| !v.is_empty()) {
                match key {
                    "net" | "network" => filter.networks.push(parse_network(value)?),
                    "layout" => filter.layouts.push(parse_layout(value)?),
                    "alg" | "algorithm" => filter.algorithms.push(parse_algorithm(value)?),
                    "engine" => filter.engines.push(parse_engine(value)?),
                    "batch" => filter.batches.push(parse_batch(value)?),
                    "fabric" => filter.fabrics.push(parse_fabric(value)?),
                    "tenancy" => filter.tenancies.push(parse_tenancy(value)?),
                    other => {
                        return Err(format!(
                            "unknown filter key {other:?} \
                             (expected net|layout|alg|engine|batch|fabric|tenancy)"
                        ))
                    }
                }
            }
        }
        Ok(filter)
    }

    /// Restricts the network axis (builder-style convenience).
    pub fn network<S: Into<String>>(mut self, name: S) -> Self {
        self.networks.push(name.into());
        self
    }

    /// Restricts the layout axis (builder-style convenience; drivers use
    /// this to pin the paper grid to NCHW).
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layouts.push(layout);
        self
    }

    /// Restricts the algorithm axis (builder-style convenience).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithms.push(algorithm);
        self
    }

    /// Restricts the inference-engine axis (builder-style convenience).
    pub fn engine(mut self, engine: InferEngine) -> Self {
        self.engines.push(engine);
        self
    }

    /// Restricts the inference batch axis (builder-style convenience).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batches.push(batch);
        self
    }

    /// Restricts the fabric-shape axis (builder-style convenience).
    pub fn fabric(mut self, fabric: FabricShape) -> Self {
        self.fabrics.push(fabric);
        self
    }

    /// Restricts the tenancy axis (builder-style convenience).
    pub fn tenancy(mut self, tenancy: Tenancy) -> Self {
        self.tenancies.push(tenancy);
        self
    }

    /// Whether every axis is unrestricted.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
            && self.layouts.is_empty()
            && self.algorithms.is_empty()
            && self.engines.is_empty()
            && self.batches.is_empty()
            && self.fabrics.is_empty()
            && self.tenancies.is_empty()
    }

    /// Whether `scenario` passes every axis.
    pub fn matches(&self, scenario: &Scenario) -> bool {
        self.matches_network(&scenario.network)
            && (self.layouts.is_empty() || self.layouts.contains(&scenario.layout))
            && (self.algorithms.is_empty() || self.algorithms.contains(&scenario.algorithm))
            && (self.engines.is_empty() || self.engines.contains(&scenario.engine))
            && (self.batches.is_empty() || self.batches.contains(&scenario.batch))
            && (self.fabrics.is_empty() || self.fabrics.contains(&scenario.fabric))
            && (self.tenancies.is_empty() || self.tenancies.contains(&scenario.tenancy))
    }

    /// Whether the network axis admits `name` (for drivers that loop over
    /// networks without a full scenario in hand).
    pub fn matches_network(&self, name: &str) -> bool {
        self.networks.is_empty() || self.networks.iter().any(|n| n.eq_ignore_ascii_case(name))
    }

    /// Whether the algorithm axis admits `algorithm` (for reports that
    /// add codecs beyond a scenario set's own algorithm axis).
    pub fn matches_algorithm(&self, algorithm: Algorithm) -> bool {
        self.algorithms.is_empty() || self.algorithms.contains(&algorithm)
    }
}

fn parse_network(s: &str) -> Result<String, String> {
    zoo::all_networks()
        .iter()
        .find(|n| n.name().eq_ignore_ascii_case(s))
        .map(|n| n.name().to_owned())
        .ok_or_else(|| {
            let known: Vec<&str> = zoo::all_networks().iter().map(|n| n.name()).collect();
            format!("unknown network {s:?} (zoo has {})", known.join(", "))
        })
}

fn parse_layout(s: &str) -> Result<Layout, String> {
    Layout::ALL
        .into_iter()
        .find(|l| l.to_string().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown layout {s:?} (expected nchw|nhwc|chwn)"))
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    let wanted = s.to_ascii_lowercase();
    Algorithm::EXTENDED
        .into_iter()
        .find(|a| {
            a.label().eq_ignore_ascii_case(&wanted)
                || format!("{a:?}").eq_ignore_ascii_case(&wanted)
        })
        .ok_or_else(|| {
            format!(
                "unknown algorithm {s:?} (expected rl|zv|zl|cs|hf|ad or rle|zvc|zlib|csc|huff|adaptive)"
            )
        })
}

fn parse_engine(s: &str) -> Result<InferEngine, String> {
    s.parse::<InferEngine>()
        .map_err(|_| format!("unknown engine {s:?} (expected dense|csc|csc+act)"))
}

fn parse_batch(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&b| b > 0)
        .ok_or_else(|| format!("batch {s:?} is not a positive integer"))
}

fn parse_fabric(s: &str) -> Result<FabricShape, String> {
    s.to_ascii_lowercase().parse::<FabricShape>()
}

fn parse_tenancy(s: &str) -> Result<Tenancy, String> {
    s.to_ascii_lowercase().parse::<Tenancy>()
}

/// Cache-effectiveness counters of a [`Context`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that computed the value.
    pub misses: u64,
}

/// How a [`Context`] obtains its [`RatioTable`].
#[derive(Debug, Clone, Copy)]
enum TableKind {
    /// Full-resolution grid (17 density points) — the bench default.
    Full(u64),
    /// Coarse grid — fast enough for tests and `--fast` CLI runs.
    Fast(u64),
}

/// The shared, thread-safe memo of everything expensive a sweep touches
/// more than once: network specs, density profiles, the measured
/// [`RatioTable`], per-cell traffic summaries, and synthesized measured
/// streams. One `Context` outlives a whole `experiments all` run, so
/// e.g. the ratio table is built once and shared by all 19 experiments
/// (the deleted per-figure `cdma-bench` bins each rebuilt it from
/// scratch).
///
/// All methods take `&self`; a `Context` is `Sync` and is shared by the
/// [`Runner`]'s worker threads.
#[derive(Debug)]
pub struct Context {
    table_kind: TableKind,
    table: OnceLock<Arc<RatioTable>>,
    prebuilt_table: Option<Arc<RatioTable>>,
    specs: OnceLock<Vec<Arc<NetworkSpec>>>,
    profiles: Mutex<HashMap<String, Arc<NetworkProfile>>>,
    traffic: Mutex<HashMap<TrafficKey, Arc<NetworkTraffic>>>,
    streams: Mutex<HashMap<StreamKey, Arc<MeasuredStream>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Traffic memo key: network × algorithm × layout.
type TrafficKey = (String, Algorithm, Layout);
/// Measured-stream memo key: network × algorithm × layout × checkpoint
/// bits × seed (the platform does not affect stream contents).
type StreamKey = (String, Algorithm, Layout, u64, u64);

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl Context {
    fn with_kind(table_kind: TableKind, prebuilt: Option<RatioTable>) -> Self {
        Context {
            table_kind,
            table: OnceLock::new(),
            prebuilt_table: prebuilt.map(Arc::new),
            specs: OnceLock::new(),
            profiles: Mutex::new(HashMap::new()),
            traffic: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A context with the full-resolution ratio table (seed 42 — the
    /// seed the golden tests pin the figures to).
    pub fn new() -> Self {
        Context::with_kind(TableKind::Full(42), None)
    }

    /// A context with the coarse ratio table — for tests and `--fast`
    /// CLI runs.
    pub fn fast() -> Self {
        Context::with_kind(TableKind::Fast(42), None)
    }

    /// A context around a caller-built ratio table (golden tests pin
    /// numbers by sharing the exact table with a legacy reimplementation).
    pub fn with_table(table: RatioTable) -> Self {
        Context::with_kind(TableKind::Fast(0), Some(table))
    }

    /// Whether this context was built for coarse/fast runs
    /// ([`Context::fast`] or [`Context::with_table`]) rather than the
    /// full-resolution grid — experiments with their own notion of
    /// "smaller" (shorter load horizons, fewer sweep points) key off this
    /// instead of growing a parallel flag.
    pub fn is_fast(&self) -> bool {
        matches!(self.table_kind, TableKind::Fast(_))
    }

    /// The memoized ratio table (built on first use).
    pub fn ratio_table(&self) -> Arc<RatioTable> {
        if let Some(t) = &self.prebuilt_table {
            return t.clone();
        }
        self.table
            .get_or_init(|| {
                Arc::new(match self.table_kind {
                    TableKind::Full(seed) => RatioTable::build(seed),
                    TableKind::Fast(seed) => RatioTable::build_fast(seed),
                })
            })
            .clone()
    }

    /// Every zoo network spec (memoized).
    pub fn specs(&self) -> &[Arc<NetworkSpec>] {
        self.specs
            .get_or_init(|| zoo::all_networks().into_iter().map(Arc::new).collect())
    }

    /// The spec of one zoo network, by (case-insensitive) name.
    ///
    /// # Panics
    ///
    /// Panics if the name matches no zoo network.
    pub fn spec(&self, network: &str) -> Arc<NetworkSpec> {
        self.specs()
            .iter()
            .find(|s| s.name().eq_ignore_ascii_case(network))
            .unwrap_or_else(|| {
                let known: Vec<&str> = self.specs().iter().map(|s| s.name()).collect();
                panic!("unknown network {network:?} (zoo has {known:?})")
            })
            .clone()
    }

    /// The calibrated density profile of one network (memoized).
    pub fn profile(&self, network: &str) -> Arc<NetworkProfile> {
        let key = self.spec(network).name().to_owned();
        self.memo(&self.profiles, key.clone(), || {
            profiles::density_profile(&self.spec(&key))
        })
    }

    /// The offloaded-traffic summary of one grid cell (memoized): the
    /// network's per-layer training-averaged compression under
    /// `algorithm`/`layout`, through the shared ratio table.
    pub fn traffic(
        &self,
        network: &str,
        algorithm: Algorithm,
        layout: Layout,
    ) -> Arc<NetworkTraffic> {
        let spec = self.spec(network);
        let key = (spec.name().to_owned(), algorithm, layout);
        self.memo(&self.traffic, key, || {
            traffic::network_traffic(
                &spec,
                &self.profile(spec.name()),
                algorithm,
                layout,
                &self.ratio_table(),
            )
        })
    }

    /// A synthesized measured stream for `scenario` (memoized by network,
    /// algorithm, layout, checkpoint and seed): one image's worth of
    /// clustered activations per layer at the profiled density, generated
    /// in the scenario's layout, compressed for real through the engine
    /// and replicated across the minibatch.
    pub fn measured_stream(&self, scenario: &Scenario) -> Arc<MeasuredStream> {
        let spec = self.spec(&scenario.network);
        let key = (
            spec.name().to_owned(),
            scenario.algorithm,
            scenario.layout,
            scenario.checkpoint.to_bits(),
            scenario.seed,
        );
        self.memo(&self.streams, key, || {
            let engine = CdmaEngine::new(scenario.config, scenario.algorithm);
            measured::synthesized_stream_with_layout(
                &engine,
                &spec,
                &self.profile(spec.name()),
                scenario.layout,
                scenario.checkpoint,
                scenario.seed,
            )
        })
    }

    /// Builds the live [`TransferSource`](cdma_vdnn::TransferSource) for a
    /// scenario — the single place a [`Fidelity`] *value* becomes one of
    /// the three concrete source types.
    pub fn transfer_source(&self, scenario: &Scenario) -> FidelitySource {
        let spec = self.spec(&scenario.network);
        match scenario.fidelity {
            Fidelity::UniformRatio => {
                let t = self.traffic(&scenario.network, scenario.algorithm, scenario.layout);
                UniformRatio::uniform(&spec, t.avg_ratio()).into()
            }
            Fidelity::ProfiledDensity => ProfiledDensity::at_checkpoint(
                &spec,
                &self.profile(spec.name()),
                scenario.checkpoint,
                scenario.algorithm,
                scenario.layout,
                &self.ratio_table(),
            )
            .into(),
            Fidelity::MeasuredStream => (*self.measured_stream(scenario)).clone().into(),
        }
    }

    /// Cache counters (hits vs computed misses) across every memoized
    /// lookup.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Double-checked memo: concurrent misses may compute the value twice
    /// (the results are deterministic, so either copy is correct), but the
    /// first insert wins and everyone shares it afterwards.
    fn memo<K, V>(
        &self,
        map: &Mutex<HashMap<K, Arc<V>>>,
        key: K,
        make: impl FnOnce() -> V,
    ) -> Arc<V>
    where
        K: std::hash::Hash + Eq,
    {
        if let Some(v) = map.lock().expect("context cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(make());
        map.lock()
            .expect("context cache poisoned")
            .entry(key)
            .or_insert(v)
            .clone()
    }
}

/// Order-preserving fan-out of scenario sets (or any work list) over
/// scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner with one worker per available core.
    pub fn new() -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runner { jobs }
    }

    /// A single-threaded runner (identical results, no fan-out).
    pub fn sequential() -> Self {
        Runner { jobs: 1 }
    }

    /// A runner with exactly `jobs` workers (0 is clamped to 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every scenario of `set`, returning results in
    /// scenario order.
    pub fn run<T, F>(&self, set: &ScenarioSet, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Scenario) -> T + Sync,
    {
        self.map(set.scenarios(), f)
    }

    /// Runs `f` over an arbitrary work list, returning results in input
    /// order. Work is pulled from a shared atomic cursor, so long items
    /// do not serialize behind short ones; results are reassembled by
    /// index, so the output is identical to the sequential run.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(&f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(item)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => indexed.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_the_triple_loop_in_legacy_order() {
        let grid = ScenarioSet::paper_grid();
        assert_eq!(grid.len(), 6 * 3 * 3);
        assert_eq!(grid.networks().len(), 6);
        // Network-major, then layout, then algorithm — the legacy
        // `for spec { for layout { for alg { … } } }` order.
        let s = grid.scenarios();
        assert_eq!(s[0].network, s[8].network);
        assert_ne!(s[8].network, s[9].network);
        assert_eq!(s[0].layout, s[2].layout);
        assert_ne!(s[2].layout, s[3].layout);
        assert_ne!(s[0].algorithm, s[1].algorithm);
    }

    #[test]
    fn builder_takes_the_cartesian_product() {
        let set = ScenarioSet::builder()
            .networks(["AlexNet", "VGG"])
            .layouts([Layout::Nchw, Layout::Nhwc])
            .algorithms([Algorithm::Zvc])
            .fidelities(Fidelity::ALL)
            .checkpoints([0.1, 0.9])
            .build();
        // 2 networks x 2 layouts x 1 algorithm x 3 fidelities x 2 checkpoints.
        assert_eq!(set.len(), 24);
        // Innermost axis varies fastest.
        assert_eq!(set.scenarios()[0].checkpoint, 0.1);
        assert_eq!(set.scenarios()[1].checkpoint, 0.9);
        assert_eq!(set.scenarios()[0].fidelity, set.scenarios()[1].fidelity);
    }

    #[test]
    fn filter_parses_and_matches() {
        let f = ScenarioFilter::parse(&["net=alexnet,VGG", "layout=nchw", "alg=zv"]).unwrap();
        assert!(!f.is_empty());
        assert!(f.matches_network("AlexNet"));
        assert!(f.matches_network("VGG"));
        assert!(!f.matches_network("NiN"));
        let grid = ScenarioSet::paper_grid().filtered(&f);
        assert_eq!(grid.len(), 2);
        assert!(grid
            .scenarios()
            .iter()
            .all(|s| s.layout == Layout::Nchw && s.algorithm == Algorithm::Zvc));

        // Every extended codec parses by label and by debug name.
        let f = ScenarioFilter::parse(&["alg=rl,zvc,ZLIB,cs,hf,adaptive"]).unwrap();
        assert_eq!(f.algorithms.len(), Algorithm::EXTENDED.len());

        assert!(ScenarioFilter::parse(&["bogus"]).is_err());
        assert!(ScenarioFilter::parse(&["k=v"]).is_err());
        assert!(ScenarioFilter::parse(&["layout=xyz"]).is_err());
        assert!(ScenarioFilter::parse(&["alg=xyz"]).is_err());
        // A typo'd network errors at parse time instead of silently
        // filtering every sweep to empty.
        assert!(ScenarioFilter::parse(&["net=AlexNte"]).is_err());
        assert!(ScenarioFilter::all().matches(&ScenarioSet::paper_grid().scenarios()[0]));

        // The datacenter axes parse, validate and match.
        let f = ScenarioFilter::parse(&["fabric=node8", "tenancy=churn"]).unwrap();
        assert!(!f.is_empty());
        let set = ScenarioSet::builder()
            .networks(["AlexNet"])
            .fabrics(FabricShape::ALL)
            .tenancies(Tenancy::ALL)
            .build();
        let hits: Vec<_> = set.scenarios().iter().filter(|s| f.matches(s)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].fabric,
            FabricShape::Hierarchical { gpus_per_node: 8 }
        );
        assert_eq!(hits[0].tenancy, Tenancy::Churn);
        assert!(ScenarioFilter::parse(&["fabric=mesh"]).is_err());
        assert!(ScenarioFilter::parse(&["tenancy=rotating"]).is_err());
    }

    #[test]
    fn context_memoizes_profiles_and_traffic() {
        let ctx = Context::fast();
        let a = ctx.profile("AlexNet");
        let b = ctx.profile("alexnet");
        assert!(Arc::ptr_eq(&a, &b));
        let t1 = ctx.traffic("AlexNet", Algorithm::Zvc, Layout::Nchw);
        let t2 = ctx.traffic("AlexNet", Algorithm::Zvc, Layout::Nchw);
        assert!(Arc::ptr_eq(&t1, &t2));
        let stats = ctx.stats();
        assert!(stats.hits >= 2, "stats {stats:?}");
        assert!(stats.misses >= 2, "stats {stats:?}");
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn unknown_network_panics_with_the_zoo_list() {
        Context::fast().spec("ResNet-50");
    }

    #[test]
    fn transfer_source_dispatches_on_the_fidelity_value() {
        let ctx = Context::fast();
        let mut scenario = ScenarioSet::builder()
            .networks(["AlexNet"])
            .build()
            .scenarios()[0]
            .clone();
        for fidelity in Fidelity::ALL {
            scenario.fidelity = fidelity;
            let source = ctx.transfer_source(&scenario);
            assert_eq!(source.level(), fidelity, "{fidelity:?}");
        }
        // The measured stream is cached across calls.
        let s1 = ctx.measured_stream(&scenario);
        let s2 = ctx.measured_stream(&scenario);
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn measured_streams_respect_the_layout_axis() {
        // RLE is layout-sensitive (Fig. 11), so the measured streams of
        // two layouts must differ — and must not share a cache slot.
        let ctx = Context::fast();
        let mut scenario = ScenarioSet::builder()
            .networks(["AlexNet"])
            .algorithms([Algorithm::Rle])
            .fidelities([Fidelity::MeasuredStream])
            .build()
            .scenarios()[0]
            .clone();
        let nchw = ctx.measured_stream(&scenario);
        scenario.layout = Layout::Nhwc;
        let nhwc = ctx.measured_stream(&scenario);
        assert!(!Arc::ptr_eq(&nchw, &nhwc));
        assert_eq!(nchw.total_uncompressed(), nhwc.total_uncompressed());
        assert_ne!(
            nchw.total_compressed(),
            nhwc.total_compressed(),
            "RLE wire bytes should differ across layouts"
        );
    }

    #[test]
    fn runner_preserves_order_under_parallelism() {
        let items: Vec<u64> = (0..257).collect();
        let seq = Runner::sequential().map(&items, |&i| i * i);
        let par = Runner::with_jobs(8).map(&items, |&i| i * i);
        assert_eq!(seq, par);
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
        assert!(Runner::new().jobs() >= 1);
    }

    #[test]
    fn runner_runs_scenario_sets() {
        let grid = ScenarioSet::paper_grid();
        let labels = Runner::with_jobs(4).run(&grid, |s| s.label());
        assert_eq!(labels.len(), grid.len());
        assert!(labels[0].contains("AlexNet"));
    }
}
