//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (Section VII). The `cdma-bench` binaries print these; the
//! workspace integration tests assert the headline numbers.

use cdma_compress::Algorithm;
use cdma_gpusim::SystemConfig;
use cdma_models::profiles::{self, NetworkProfile};
use cdma_models::{zoo, NetworkSpec};
use cdma_sparsity::TRAINING_CHECKPOINTS;
use cdma_tensor::Layout;
use cdma_vdnn::timeline::{ProfiledDensity, StepTimeline, TimelineSim, UniformRatio};
use cdma_vdnn::traffic::{self, NetworkTraffic};
use cdma_vdnn::{ComputeModel, CudnnVersion, RatioTable, StepSim, TransferPolicy};

use crate::measured;
use crate::CdmaEngine;

/// One bar group of Fig. 11: per network × layout × algorithm, the
/// byte-weighted average and per-layer maximum compression ratio.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Network name.
    pub network: String,
    /// Activation memory layout.
    pub layout: Layout,
    /// Compression algorithm.
    pub algorithm: Algorithm,
    /// Average (weighted) network compression ratio.
    pub avg_ratio: f64,
    /// Maximum per-layer ratio.
    pub max_ratio: f64,
}

/// Generates Fig. 11 (all networks × 3 layouts × 3 algorithms).
pub fn fig11(table: &RatioTable) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for spec in zoo::all_networks() {
        let profile = profiles::density_profile(&spec);
        for layout in Layout::ALL {
            for alg in Algorithm::ALL {
                let t = traffic::network_traffic(&spec, &profile, alg, layout, table);
                rows.push(Fig11Row {
                    network: spec.name().to_owned(),
                    layout,
                    algorithm: alg,
                    avg_ratio: t.avg_ratio(),
                    max_ratio: t.max_layer_ratio(),
                });
            }
        }
    }
    rows
}

/// One bar of Fig. 12: offloaded bytes normalized to uncompressed vDNN.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Network name.
    pub network: String,
    /// Compression algorithm.
    pub algorithm: Algorithm,
    /// Compressed size over uncompressed size (lower is better).
    pub normalized_offload: f64,
}

/// Generates Fig. 12 (NCHW layout, as the paper's results section uses).
pub fn fig12(table: &RatioTable) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for spec in zoo::all_networks() {
        let profile = profiles::density_profile(&spec);
        for alg in Algorithm::ALL {
            let t = traffic::network_traffic(&spec, &profile, alg, Layout::Nchw, table);
            rows.push(Fig12Row {
                network: spec.name().to_owned(),
                algorithm: alg,
                normalized_offload: t.normalized_offload(),
            });
        }
    }
    rows
}

/// Transfer configuration of one Fig. 13 bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfConfig {
    /// Uncompressed vDNN.
    Vdnn,
    /// cDMA with the given algorithm.
    Cdma(Algorithm),
    /// The oracle (PCIe bottleneck removed).
    Oracle,
}

impl PerfConfig {
    /// Label as in Fig. 13 ("vDNN", "RL", "ZV", "ZL", "orac").
    pub fn label(&self) -> &'static str {
        match self {
            PerfConfig::Vdnn => "vDNN",
            PerfConfig::Cdma(a) => a.label(),
            PerfConfig::Oracle => "orac",
        }
    }
}

/// One bar of Fig. 13: performance normalized to the oracle.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Network name.
    pub network: String,
    /// Transfer configuration.
    pub config: PerfConfig,
    /// Performance normalized to the oracle baseline (1.0 = no overhead).
    pub performance: f64,
}

/// Generates Fig. 13 on the given platform with cuDNN v5 compute.
pub fn fig13(cfg: SystemConfig, table: &RatioTable) -> Vec<Fig13Row> {
    let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
    let mut rows = Vec::new();
    for spec in zoo::all_networks() {
        let profile = profiles::density_profile(&spec);
        let mut push = |config: PerfConfig, perf: f64| {
            rows.push(Fig13Row {
                network: spec.name().to_owned(),
                config,
                performance: perf,
            });
        };
        push(
            PerfConfig::Vdnn,
            sim.normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0)),
        );
        for alg in Algorithm::ALL {
            let t = traffic::network_traffic(&spec, &profile, alg, Layout::Nchw, table);
            let ratios = traffic::per_layer_ratios(&t);
            push(
                PerfConfig::Cdma(alg),
                sim.normalized_performance(&spec, TransferPolicy::OffloadAll(ratios)),
            );
        }
        push(PerfConfig::Oracle, 1.0);
    }
    rows
}

/// One point of Fig. 3: per network and cuDNN version, the compute speedup
/// over v1 (panel a) and vDNN performance normalized to the same-version
/// oracle (panel b).
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Network name.
    pub network: String,
    /// cuDNN version.
    pub version: CudnnVersion,
    /// Compute speedup relative to cuDNN v1 (Fig. 3a).
    pub speedup_vs_v1: f64,
    /// vDNN performance normalized to the oracle (Fig. 3b).
    pub vdnn_performance: f64,
}

/// Generates both panels of Fig. 3.
pub fn fig03(cfg: SystemConfig) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for spec in zoo::all_networks() {
        let t1 = ComputeModel::titan_x(CudnnVersion::V1).step_compute_time(&spec);
        for v in CudnnVersion::ALL {
            let model = ComputeModel::titan_x(v);
            let sim = StepSim::new(cfg, model);
            rows.push(Fig3Row {
                network: spec.name().to_owned(),
                version: v,
                speedup_vs_v1: t1 / model.step_compute_time(&spec),
                vdnn_performance: sim
                    .normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0)),
            });
        }
    }
    rows
}

/// Per-layer density samples across training for one network (Fig. 4 is
/// AlexNet; Fig. 6 covers the other five).
#[derive(Debug, Clone)]
pub struct DensityFigure {
    /// Network name.
    pub network: String,
    /// Training checkpoints (fractions of total training).
    pub checkpoints: Vec<f64>,
    /// `(layer, densities-at-checkpoints)` for ReLU/pool/fc layers.
    pub layers: Vec<(String, Vec<f64>)>,
}

/// Generates the per-layer density-over-training figure for a network.
pub fn density_figure(spec: &NetworkSpec) -> DensityFigure {
    let profile = profiles::density_profile(spec);
    density_figure_from_profile(spec, &profile)
}

/// Same, from a pre-built profile.
pub fn density_figure_from_profile(spec: &NetworkSpec, profile: &NetworkProfile) -> DensityFigure {
    let checkpoints: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut layers = Vec::new();
    for layer in spec.layers() {
        // The paper's figures show only sparsity-relevant layers.
        if !(layer.relu || layer.is_pool()) {
            continue;
        }
        let traj = profile
            .trajectory(&layer.name)
            .expect("profile covers spec");
        let ds: Vec<f64> = checkpoints.iter().map(|&t| traj.density_at(t)).collect();
        layers.push((layer.name.clone(), ds));
    }
    DensityFigure {
        network: spec.name().to_owned(),
        checkpoints,
        layers,
    }
}

/// Fig. 7 data: loss curve plus the AlexNet conv-layer densities.
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// Training checkpoints.
    pub checkpoints: Vec<f64>,
    /// Loss value at each checkpoint.
    pub loss: Vec<f64>,
    /// `(layer, densities)` for conv1..conv4.
    pub conv_densities: Vec<(String, Vec<f64>)>,
}

/// Generates Fig. 7.
pub fn fig07() -> Fig7Data {
    let spec = zoo::alexnet();
    let profile = profiles::density_profile(&spec);
    let loss_curve = cdma_sparsity::LossCurve::alexnet();
    let checkpoints: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let loss = checkpoints.iter().map(|&t| loss_curve.loss_at(t)).collect();
    let conv_densities = ["conv1", "conv2", "conv3", "conv4"]
        .iter()
        .map(|name| {
            let traj = profile.trajectory(name).expect("alexnet layer");
            (
                (*name).to_owned(),
                checkpoints.iter().map(|&t| traj.density_at(t)).collect(),
            )
        })
        .collect();
    Fig7Data {
        checkpoints,
        loss,
        conv_densities,
    }
}

/// The paper's headline results, computed end-to-end.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Average ZVC compression ratio across networks (paper: 2.6×).
    pub avg_ratio: f64,
    /// Maximum per-layer ratio (paper: 13.8×).
    pub max_ratio: f64,
    /// Average cDMA-ZV performance improvement over vDNN (paper: 32%).
    pub avg_improvement: f64,
    /// Maximum improvement (paper: 61%).
    pub max_improvement: f64,
}

/// Computes the headline numbers (abstract / Section VII).
pub fn headline(cfg: SystemConfig, table: &RatioTable) -> Headline {
    let nets = zoo::all_networks();
    let mut ratios = Vec::new();
    let mut max_ratio = 0f64;
    let mut improvements = Vec::new();
    let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
    for spec in &nets {
        let profile = profiles::density_profile(spec);
        let t: NetworkTraffic =
            traffic::network_traffic(spec, &profile, Algorithm::Zvc, Layout::Nchw, table);
        ratios.push(t.avg_ratio());
        max_ratio = max_ratio.max(t.max_layer_ratio());
        let vdnn = sim.normalized_performance(spec, TransferPolicy::uniform(spec, 1.0));
        let cdma = sim.normalized_performance(
            spec,
            TransferPolicy::OffloadAll(traffic::per_layer_ratios(&t)),
        );
        improvements.push(cdma / vdnn - 1.0);
    }
    Headline {
        avg_ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
        max_ratio,
        avg_improvement: improvements.iter().sum::<f64>() / improvements.len() as f64,
        max_improvement: improvements.iter().cloned().fold(0.0, f64::max),
    }
}

/// The standard training checkpoints of Fig. 5 (0%, 20%, …, 100%).
pub fn fig5_checkpoints() -> Vec<f64> {
    TRAINING_CHECKPOINTS.to_vec()
}

/// One row of the fidelity sweep: the same training step simulated through
/// the event-driven timeline at one of its three fidelity levels.
#[derive(Debug, Clone)]
pub struct FidelityRow {
    /// Network name.
    pub network: String,
    /// Transfer-source label (`uniform-ratio`, `profiled-density`,
    /// `measured-stream`).
    pub fidelity: &'static str,
    /// Step latency, seconds.
    pub step_time: f64,
    /// Fraction of the step spent stalled on transfers.
    pub stall_fraction: f64,
    /// Events processed by the timeline (line-granularity at the measured
    /// level).
    pub events: u64,
}

impl FidelityRow {
    fn from_timeline(network: &str, tl: &StepTimeline) -> Self {
        FidelityRow {
            network: network.to_owned(),
            fidelity: tl.fidelity(),
            step_time: tl.total(),
            stall_fraction: tl.breakdown.stall_fraction(),
            events: tl.events_processed(),
        }
    }
}

/// Simulates one network's training step at every fidelity level, at
/// training checkpoint `t`:
///
/// 1. `uniform-ratio` — the network's training-averaged scalar ratio
///    applied uniformly (the paper's coarsest analytic model);
/// 2. `profiled-density` — per-layer ratios from the density trajectories
///    sampled at `t`;
/// 3. `measured-stream` — real ZVC line sizes of clustered activations
///    generated at the profiled densities and compressed through `engine`.
pub fn fidelity_rows_for(
    spec: &NetworkSpec,
    profile: &NetworkProfile,
    engine: &CdmaEngine,
    table: &RatioTable,
    t: f64,
    seed: u64,
) -> Vec<FidelityRow> {
    let sim = TimelineSim::new(engine.config(), ComputeModel::titan_x(CudnnVersion::V5));
    let traffic = traffic::network_traffic(spec, profile, engine.algorithm(), Layout::Nchw, table);
    let uniform = UniformRatio::uniform(spec, traffic.avg_ratio());
    let profiled =
        ProfiledDensity::at_checkpoint(spec, profile, t, engine.algorithm(), Layout::Nchw, table);
    let stream = measured::synthesized_stream(engine, spec, profile, t, seed);
    [
        sim.simulate(spec, &uniform),
        sim.simulate(spec, &profiled),
        sim.simulate(spec, &stream),
    ]
    .iter()
    .map(|tl| FidelityRow::from_timeline(spec.name(), tl))
    .collect()
}

/// The full fidelity sweep: every zoo network × the three fidelity levels
/// at training checkpoint `t` (the cross-validation behind the timeline's
/// claim that analytic ratios approximate real compressed streams).
pub fn fidelity_sweep(
    cfg: SystemConfig,
    table: &RatioTable,
    t: f64,
    seed: u64,
) -> Vec<FidelityRow> {
    let engine = CdmaEngine::zvc(cfg);
    let mut rows = Vec::new();
    for spec in zoo::all_networks() {
        let profile = profiles::density_profile(&spec);
        rows.extend(fidelity_rows_for(&spec, &profile, &engine, table, t, seed));
    }
    rows
}

/// End-to-end training-run projection: Table I's iteration counts priced
/// with per-checkpoint step times, so the *evolving* sparsity (U-curve) is
/// integrated over the whole run rather than averaged.
#[derive(Debug, Clone)]
pub struct TrainingRunSummary {
    /// Network name.
    pub network: String,
    /// Training iterations (from Table I).
    pub iterations: u64,
    /// Wall-clock hours under the oracle (no PCIe bottleneck).
    pub oracle_hours: f64,
    /// Wall-clock hours under uncompressed vDNN.
    pub vdnn_hours: f64,
    /// Wall-clock hours under cDMA-ZV.
    pub cdma_hours: f64,
}

impl TrainingRunSummary {
    /// Whole-run speedup of cDMA over vDNN.
    pub fn cdma_speedup(&self) -> f64 {
        self.vdnn_hours / self.cdma_hours
    }

    /// Training days saved by cDMA vs vDNN.
    pub fn days_saved(&self) -> f64 {
        (self.vdnn_hours - self.cdma_hours) / 24.0
    }
}

/// Projects the full training runs of all six networks. The run is split
/// into checkpoint buckets; each bucket's step time uses that checkpoint's
/// per-layer densities (early training is sparser, so cDMA steps are
/// faster then — averaging would hide that).
pub fn training_runs(cfg: SystemConfig, table: &RatioTable) -> Vec<TrainingRunSummary> {
    let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
    let buckets = 10usize;
    zoo::all_networks()
        .iter()
        .zip(zoo::TABLE_ONE.iter())
        .map(|(spec, row)| {
            let profile = profiles::density_profile(spec);
            let iterations = row.trained_kiter as u64 * 1000;
            let per_bucket = iterations as f64 / buckets as f64;
            let oracle_step = sim.step_time(spec, TransferPolicy::Oracle).total();
            let vdnn_step = sim
                .step_time(spec, TransferPolicy::uniform(spec, 1.0))
                .total();
            let mut cdma_secs = 0.0;
            for k in 0..buckets {
                let t = (k as f64 + 0.5) / buckets as f64;
                let ratios: Vec<f64> = spec
                    .layers()
                    .iter()
                    .map(|l| {
                        let d = profile
                            .trajectory(&l.name)
                            .expect("profiled layer")
                            .density_at(t);
                        table.ratio(Algorithm::Zvc, Layout::Nchw, d)
                    })
                    .collect();
                let step = sim
                    .step_time(spec, TransferPolicy::OffloadAll(ratios))
                    .total();
                cdma_secs += step * per_bucket;
            }
            TrainingRunSummary {
                network: spec.name().to_owned(),
                iterations,
                oracle_hours: oracle_step * iterations as f64 / 3600.0,
                vdnn_hours: vdnn_step * iterations as f64 / 3600.0,
                cdma_hours: cdma_secs / 3600.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RatioTable {
        RatioTable::build_fast(11)
    }

    #[test]
    fn fig11_has_all_cells() {
        let rows = fig11(&table());
        assert_eq!(rows.len(), 6 * 3 * 3);
        assert!(rows
            .iter()
            .all(|r| r.avg_ratio > 0.5 && r.max_ratio >= r.avg_ratio));
    }

    #[test]
    fn fig11_zvc_layout_insensitivity() {
        let rows = fig11(&table());
        for net in ["AlexNet", "VGG"] {
            let zv: Vec<&Fig11Row> = rows
                .iter()
                .filter(|r| r.network == net && r.algorithm == Algorithm::Zvc)
                .collect();
            let base = zv[0].avg_ratio;
            for r in &zv {
                assert!(
                    (r.avg_ratio - base).abs() / base < 0.05,
                    "{net} {}: {} vs {}",
                    r.layout,
                    r.avg_ratio,
                    base
                );
            }
        }
    }

    #[test]
    fn fig12_zv_reduces_traffic_everywhere() {
        let rows = fig12(&table());
        for r in rows.iter().filter(|r| r.algorithm == Algorithm::Zvc) {
            assert!(
                r.normalized_offload < 0.75,
                "{}: normalized {}",
                r.network,
                r.normalized_offload
            );
        }
    }

    #[test]
    fn fig13_ordering_vdnn_cdma_oracle() {
        let rows = fig13(SystemConfig::titan_x_pcie3(), &table());
        for net in ["AlexNet", "SqueezeNet", "GoogLeNet"] {
            let get = |c: PerfConfig| {
                rows.iter()
                    .find(|r| r.network == net && r.config == c)
                    .map(|r| r.performance)
                    .unwrap()
            };
            let vdnn = get(PerfConfig::Vdnn);
            let zv = get(PerfConfig::Cdma(Algorithm::Zvc));
            assert!(vdnn <= zv, "{net}: vDNN {vdnn} vs ZV {zv}");
            assert!(zv <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn fig03_speedups_and_degradation() {
        let rows = fig03(SystemConfig::titan_x_pcie3());
        assert_eq!(rows.len(), 6 * 5);
        for r in &rows {
            assert!(r.speedup_vs_v1 >= 1.0 - 1e-9);
            assert!(r.vdnn_performance <= 1.0 + 1e-9);
        }
        // v5 speedup ~2.2x on average.
        let v5: Vec<&Fig3Row> = rows
            .iter()
            .filter(|r| r.version == CudnnVersion::V5)
            .collect();
        let avg = v5.iter().map(|r| r.speedup_vs_v1).sum::<f64>() / v5.len() as f64;
        assert!((1.9..2.6).contains(&avg), "avg {avg}");
    }

    #[test]
    fn density_figures_cover_fig4_layers() {
        let fig = density_figure(&zoo::alexnet());
        let names: Vec<&str> = fig.layers.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "conv0", "pool0", "conv1", "pool1", "conv2", "conv3", "conv4", "pool2", "fc1", "fc2",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Dense layers are filtered out.
        assert!(!names.contains(&"norm0"));
        assert!(!names.contains(&"fc3"));
    }

    #[test]
    fn fig07_loss_falls_densities_u_shape() {
        let f = fig07();
        assert!(f.loss[0] > 6.5 && *f.loss.last().unwrap() < 2.2);
        for (name, ds) in &f.conv_densities {
            let start = ds[0];
            let min = ds.iter().cloned().fold(f64::INFINITY, f64::min);
            let end = *ds.last().unwrap();
            assert!(min < start && min < end, "{name} not U-shaped");
        }
    }

    #[test]
    fn training_runs_integrate_the_u_curve() {
        let runs = training_runs(SystemConfig::titan_x_pcie3(), &table());
        assert_eq!(runs.len(), 6);
        for r in &runs {
            assert!(r.oracle_hours <= r.cdma_hours + 1e-9, "{}", r.network);
            assert!(r.cdma_hours <= r.vdnn_hours + 1e-9, "{}", r.network);
            assert!(r.cdma_speedup() >= 1.0);
            assert!(r.iterations >= 82_000);
        }
        // SqueezeNet's run shrinks by days.
        let squeeze = runs.iter().find(|r| r.network == "SqueezeNet").unwrap();
        assert!(
            squeeze.days_saved() > 0.3,
            "SqueezeNet saves {} days",
            squeeze.days_saved()
        );
        // The U-curve integration beats the flat-average model slightly:
        // cDMA hours < vdnn_hours / avg-ratio-derived bound sanity.
        assert!(squeeze.cdma_speedup() > 1.3);
    }

    #[test]
    fn fidelity_levels_agree_on_alexnet() {
        let spec = zoo::alexnet();
        let profile = profiles::density_profile(&spec);
        let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
        let rows = fidelity_rows_for(&spec, &profile, &engine, &table(), 0.5, 11);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].fidelity, "uniform-ratio");
        assert_eq!(rows[1].fidelity, "profiled-density");
        assert_eq!(rows[2].fidelity, "measured-stream");
        // All three levels model the same step: the times must agree to
        // well within the vDNN-vs-oracle spread.
        let base = rows[0].step_time;
        for r in &rows {
            assert!(r.step_time > 0.0 && r.stall_fraction < 1.0);
            assert!(
                (r.step_time - base).abs() / base < 0.30,
                "{} step {} vs uniform {}",
                r.fidelity,
                r.step_time,
                base
            );
        }
        // The measured level simulates at line granularity.
        assert!(rows[2].events > 100 * rows[0].events);
    }

    #[test]
    fn headline_matches_paper_bands() {
        // Abstract: "average 2.6x (maximum 13.8x) compression ratio",
        // "average 32% (maximum 61%) performance improvement".
        let h = headline(SystemConfig::titan_x_pcie3(), &table());
        assert!(
            (2.0..3.2).contains(&h.avg_ratio),
            "avg ratio {} (paper 2.6)",
            h.avg_ratio
        );
        assert!(
            (8.0..32.0).contains(&h.max_ratio),
            "max ratio {} (paper 13.8)",
            h.max_ratio
        );
        assert!(
            (0.15..0.50).contains(&h.avg_improvement),
            "avg improvement {} (paper 0.32)",
            h.avg_improvement
        );
        assert!(
            (0.30..0.90).contains(&h.max_improvement),
            "max improvement {} (paper 0.61)",
            h.max_improvement
        );
    }
}
