//! Counting-allocator pin for the engine's offload hot path: after the
//! first call warms the scratch's stream buffers and pipeline vectors,
//! [`CdmaEngine::offload_into`] must allocate exactly zero bytes per
//! offload — the fix for the per-call `DmaPipeline` rebuild that
//! `memcpy_compressed_reusing` used to pay.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cdma_core::{CdmaEngine, OffloadScratch};
use cdma_gpusim::SystemConfig;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn offload_into_steady_state_allocates_nothing() {
    let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
    let mut scratch = OffloadScratch::for_engine(&engine);
    // A layer-sized buffer, roughly half zeros (the paper's sweet spot).
    let mut data = vec![0.0f32; 256 * 1024];
    for (i, v) in data.iter_mut().enumerate() {
        if i % 7 < 3 {
            *v = (i % 251) as f32 + 0.5;
        }
    }

    // Warm-up sizes the window stream and the pipeline's line vectors.
    let warm = engine.offload_into(&data, &mut scratch);

    let before = (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst));
    let mut last = warm;
    for _ in 0..32 {
        last = engine.offload_into(&data, &mut scratch);
    }
    let after = (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst));

    assert_eq!(
        after, before,
        "offload_into must allocate zero bytes per call after warm-up"
    );
    // And it keeps producing the same answer as the warm-up call.
    assert_eq!(warm.0, last.0);
    assert_eq!(warm.1.total_time, last.1.total_time);
    assert_eq!(warm.1.compressed_bytes, last.1.compressed_bytes);
}
