//! # Multi-GPU shared-link cluster simulation (Section IX)
//!
//! The paper argues cDMA matters *most* on multi-GPU platforms where 4–8
//! GPUs share one host channel: per-GPU activation traffic shrinks with
//! the per-GPU batch, the gradient all-reduce does not, and the link share
//! thins — so transfer stalls grow exactly where compression helps.
//!
//! [`ClusterSim`] grows that scenario onto the event-driven timeline: each
//! GPU of each [`Tenant`] runs the vDNN stage machine of
//! [`TimelineSim`], but its offloads and
//! prefetches contend for one
//! [`LinkArbiter`] under a
//! [`LinkPolicy`], together with one gradient
//! all-reduce stream per data-parallel tenant. Heterogeneous tenants
//! (independent networks and checkpoints on one link) model the
//! heavy-traffic sharing the ROADMAP asks for.
//!
//! Two exactness anchors keep the subsystem honest:
//!
//! * a **single-GPU single-tenant** cluster takes the dedicated-link fast
//!   path and is *bit-identical* to `TimelineSim` — event log included —
//!   exactly as `StepSim` wraps the timeline
//!   (`tests/cluster_differential.rs`);
//! * in the contention-free symmetric case the fluid
//!   bandwidth-share arbitration reduces to the paper's static `PCIe/g`
//!   split, so [`MultiGpuSim`](crate::multi_gpu::MultiGpuSim) — now a thin
//!   wrapper over `ClusterSim` — matches the legacy closed form within
//!   1e-9 (`tests/multi_gpu_cross_validation.rs`).
//!
//! Modelling fidelity at `g > 1`: transfers become *fluid flows* — wire
//! bytes plus an engine-side rate cap — so the cDMA read path
//! ([`Resource::DmaRead`](crate::timeline::Resource)) is folded into each
//! flow's cap instead of booked as busy intervals, and the dedicated
//! `DmaPipeline`'s staging-buffer backpressure is abstracted away.
//! Per-GPU `DmaRead` intervals therefore only appear on the single-GPU
//! fast path, where the full line-level pipeline runs.
//!
//! ```
//! use cdma_gpusim::SystemConfig;
//! use cdma_models::zoo;
//! use cdma_vdnn::cluster::{ClusterSim, Tenant};
//! use cdma_vdnn::timeline::{LinkPolicy, UniformRatio};
//! use cdma_vdnn::{ComputeModel, CudnnVersion};
//!
//! let spec = zoo::squeezenet();
//! let source = UniformRatio::uniform(&spec, 2.6);
//! let sim = ClusterSim::new(
//!     SystemConfig::titan_x_pcie3(),
//!     ComputeModel::titan_x(CudnnVersion::V5),
//!     LinkPolicy::BandwidthShare,
//! );
//! let tl = sim.simulate(&[Tenant { spec: &spec, source: &source, gpus: 4 }]);
//! assert_eq!(tl.gpus().len(), 4);
//! // Four GPUs leave each DMA path a quarter of the wire, and the
//! // gradient all-reduce serializes behind the step.
//! let t = &tl.tenants()[0];
//! assert!(t.allreduce > 0.0);
//! assert!((t.total - tl.makespan()).abs() < 1e-12);
//! ```

use std::collections::HashMap;

use cdma_gpusim::{SystemConfig, ZvcEngine};
use cdma_models::NetworkSpec;

use crate::calendar::CalendarQueue;
use crate::fabric::{FabricSpec, FluidFabric, Links};
use crate::timeline::{
    push_busy, Event, EventKind, FlowId, LinkArbiter, LinkPolicy, Payload, Phase, RequestId,
    Resource, StageRecord, StepTimeline, TimelineSim, TransferSource,
};
use crate::{ComputeModel, StepBreakdown};

/// The gradient all-reduce traffic of one data-parallel tenant, with the
/// byte accounting checked against [`NetworkSpec`] exactly.
///
/// The legacy `multi_gpu` model derived the all-reduce volume from weight
/// counts at f32 inline, with nothing asserting the two unit systems
/// (parameter counts vs byte totals) agree. This constructor is the single
/// checked conversion point: it recomputes the byte total from
/// `total_params() × size_of::<f32>()` with overflow-checked integer
/// arithmetic and asserts it equals [`NetworkSpec::weight_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientAllReduce {
    weight_bytes: u64,
    gpus: usize,
    total_wire_bytes: u64,
}

impl GradientAllReduce {
    /// Ring all-reduce of `spec`'s weight gradients across `gpus` GPUs:
    /// `2·(g−1)` full weight images cross the shared host channel in
    /// total (each GPU sends and receives `2·(g−1)/g` of the weights).
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero, if the byte total overflows `u64`, or if
    /// `spec`'s reported weight bytes disagree with `parameters × 4`.
    pub fn ring(spec: &NetworkSpec, gpus: usize) -> Self {
        assert!(gpus > 0, "need at least one GPU");
        let params = spec.total_params();
        let weight_bytes = params
            .checked_mul(std::mem::size_of::<f32>() as u64)
            .expect("weight bytes overflow u64");
        assert_eq!(
            weight_bytes,
            spec.weight_bytes(),
            "{}: NetworkSpec weight bytes disagree with f32 × parameter count",
            spec.name()
        );
        let total_wire_bytes = weight_bytes
            .checked_mul(2 * (gpus as u64 - 1))
            .expect("ring traffic overflows u64");
        GradientAllReduce {
            weight_bytes,
            gpus,
            total_wire_bytes,
        }
    }

    /// One full weight image, bytes (f32 parameters).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// GPUs in the ring.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Exact bytes crossing the shared host channel (`2·(g−1)·weights`;
    /// zero for a single GPU).
    pub fn total_wire_bytes(&self) -> u64 {
        self.total_wire_bytes
    }

    /// Bytes each GPU contributes over its own link share
    /// (`2·(g−1)/g·weights`).
    pub fn per_gpu_wire_bytes(&self) -> f64 {
        self.total_wire_bytes as f64 / self.gpus as f64
    }

    /// Seconds the ring needs on a dedicated link of `link_bw`
    /// bytes/second.
    pub fn seconds_at(&self, link_bw: f64) -> f64 {
        self.total_wire_bytes as f64 / link_bw
    }

    /// The ring traffic split into per-layer gradient chunks (the
    /// overlapped all-reduce submits one per layer as backward retires
    /// it), with the same overflow-checked arithmetic as the total.
    ///
    /// # Panics
    ///
    /// Panics if a layer's chunk overflows `u64` or the chunks do not sum
    /// to [`GradientAllReduce::total_wire_bytes`] exactly (i.e. `spec` is
    /// not the network this ring was built for).
    pub fn per_layer_wire_bytes(&self, spec: &NetworkSpec) -> Vec<u64> {
        let rounds = 2 * (self.gpus as u64 - 1);
        let wires: Vec<u64> = spec
            .layers()
            .iter()
            .map(|l| {
                l.params
                    .checked_mul(std::mem::size_of::<f32>() as u64)
                    .and_then(|b| b.checked_mul(rounds))
                    .expect("layer ring traffic overflows u64")
            })
            .collect();
        assert_eq!(
            wires.iter().sum::<u64>(),
            self.total_wire_bytes,
            "{}: per-layer ring chunks must sum to the checked total",
            spec.name()
        );
        wires
    }
}

/// One job sharing the cluster's host link: a network trained
/// data-parallel across `gpus` GPUs, with transfers supplied at any
/// fidelity level by `source`.
#[derive(Clone, Copy)]
pub struct Tenant<'a> {
    /// The trained network.
    pub spec: &'a NetworkSpec,
    /// Transfer payloads (full-batch; the cluster scales per-GPU work by
    /// `1/gpus`, mirroring the legacy analytic convention).
    pub source: &'a dyn TransferSource,
    /// Data-parallel width.
    pub gpus: usize,
}

impl std::fmt::Debug for Tenant<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("spec", &self.spec.name())
            .field("fidelity", &self.source.fidelity())
            .field("gpus", &self.gpus)
            .finish()
    }
}

/// Per-tenant outcome of a cluster simulation.
#[derive(Debug, Clone)]
pub struct TenantResult {
    /// The tenant's network name.
    pub network: String,
    /// Data-parallel width.
    pub gpus: usize,
    /// Per-GPU step breakdown (of the slowest GPU).
    pub step: StepBreakdown,
    /// Time every GPU of the tenant finished its training step.
    pub step_end: f64,
    /// Seconds the gradient all-reduce extended past the step barrier
    /// (zero for a single GPU, and shrinks when overlapped with backward).
    pub allreduce: f64,
    /// Wall-clock span of the gradient stream, if any.
    pub allreduce_span: Option<(f64, f64)>,
    /// End-to-end completion (step + exposed all-reduce).
    pub total: f64,
}

/// The result of one cluster simulation: per-GPU step timelines plus
/// per-tenant aggregates and the shared link's busy profile.
#[derive(Debug, Clone)]
pub struct ClusterTimeline {
    gpus: Vec<StepTimeline>,
    gpu_tenant: Vec<usize>,
    tenants: Vec<TenantResult>,
    link_busy: Vec<(f64, f64)>,
    node_busy: Vec<Vec<(f64, f64)>>,
    spine_wire_bytes: f64,
    node_wire_bytes: Vec<f64>,
    makespan: f64,
    events_processed: u64,
    policy: LinkPolicy,
}

impl ClusterTimeline {
    /// Per-GPU step timelines, tenant-major (tenant 0's GPUs first).
    pub fn gpus(&self) -> &[StepTimeline] {
        &self.gpus
    }

    /// The timeline of one GPU.
    pub fn gpu(&self, i: usize) -> &StepTimeline {
        &self.gpus[i]
    }

    /// Which tenant GPU `i` belongs to.
    pub fn tenant_of(&self, i: usize) -> usize {
        self.gpu_tenant[i]
    }

    /// Per-tenant aggregates, in submission order.
    pub fn tenants(&self) -> &[TenantResult] {
        &self.tenants
    }

    /// Aggregate busy intervals of the shared tier, coalesced: the one
    /// link on a flat fabric, the spine on a hierarchical one.
    pub fn link_busy(&self) -> &[(f64, f64)] {
        &self.link_busy
    }

    /// Per-node-tier busy intervals of a hierarchical fabric (empty on a
    /// flat fabric or the dedicated single-GPU fast path).
    pub fn node_busy(&self) -> &[Vec<(f64, f64)>] {
        &self.node_busy
    }

    /// Wire bytes the shared tier carried (shared runs only; zero on the
    /// dedicated single-GPU fast path, which books busy time instead).
    pub fn spine_wire_bytes(&self) -> f64 {
        self.spine_wire_bytes
    }

    /// Wire bytes each node tier carried (empty on a flat fabric).
    pub fn node_wire_bytes(&self) -> &[f64] {
        &self.node_wire_bytes
    }

    /// End-to-end completion of the whole cluster.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Fraction of the makespan the shared link spent serving at least
    /// one flow.
    pub fn link_utilisation(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.link_busy.iter().map(|&(s, e)| e - s).sum();
        busy / self.makespan
    }

    /// Events processed across the shared queue: arbiter service events
    /// plus every per-GPU timeline event.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The arbitration policy the link ran.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }
}

/// One planned pipeline stage of a tenant's per-GPU program.
struct StagePlan {
    phase: Phase,
    layer: usize,
    compute: f64,
    demand: Option<Demand>,
    /// `OffloadStart{layer}` / `PrefetchStart{layer}` discriminator.
    offload: bool,
    /// The offloaded layer for event labelling (`None` = network input).
    event_layer: Option<usize>,
    /// Whether the stage emits a [`StageRecord`] (the serial head
    /// prefetch does not, mirroring `TimelineSim`).
    record: bool,
}

/// A transfer as the link arbiter sees it: wire bytes plus the
/// engine-side rate cap.
#[derive(Debug, Clone, Copy)]
struct Demand {
    wire_bytes: f64,
    max_rate: f64,
}

/// `(uncompressed, compressed)` byte totals of a measured line table.
fn totals(lines: &[(u32, u32)]) -> (u64, u64) {
    lines.iter().fold((0u64, 0u64), |(u, c), &(lu, lc)| {
        (u + lu as u64, c + lc as u64)
    })
}

/// Fluid-flow view of an offload payload: compressed bytes on the wire,
/// produced no faster than the read path compresses them.
fn offload_demand(cfg: &SystemConfig, payload: Payload<'_>, scale: f64) -> Option<Demand> {
    match payload {
        Payload::None => None,
        Payload::Analytic { bytes, ratio } => {
            assert!(ratio > 0.0, "compression ratio must be positive");
            let wire = bytes as f64 * scale / ratio;
            (wire > 0.0).then_some(Demand {
                wire_bytes: wire,
                max_rate: cfg.usable_comp_bw() / ratio,
            })
        }
        Payload::Lines(lines) => {
            let (u, c) = totals(lines);
            if c == 0 || u == 0 {
                return None;
            }
            Some(Demand {
                wire_bytes: c as f64 * scale,
                max_rate: cfg.usable_comp_bw() * c as f64 / u as f64,
            })
        }
    }
}

/// Fluid-flow view of a prefetch payload: compressed bytes on the wire,
/// consumed no faster than the memory-controller engines decompress.
fn prefetch_demand(cfg: &SystemConfig, payload: Payload<'_>, scale: f64) -> Option<Demand> {
    match payload {
        Payload::None => None,
        // The analytic levels keep the paper's symmetric-bandwidth model,
        // same as the dedicated timeline.
        Payload::Analytic { .. } => offload_demand(cfg, payload, scale),
        Payload::Lines(lines) => {
            let (u, c) = totals(lines);
            if c == 0 || u == 0 {
                return None;
            }
            let engines = ZvcEngine::new(cfg.engine_clock);
            let tp = engines.aggregate_throughput(cfg.mem_controllers);
            Some(Demand {
                wire_bytes: c as f64 * scale,
                max_rate: tp * c as f64 / u as f64,
            })
        }
    }
}

/// Event-driven simulator of a multi-GPU, multi-tenant platform sharing
/// one host link. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct ClusterSim {
    cfg: SystemConfig,
    compute: ComputeModel,
    policy: LinkPolicy,
    overlap_allreduce: bool,
    fabric: Option<FabricSpec>,
    record: bool,
}

impl ClusterSim {
    /// Creates a cluster simulator over `cfg`'s link with `policy`
    /// arbitration. The gradient all-reduce serializes after the step by
    /// default (the paper's conservative assumption).
    pub fn new(cfg: SystemConfig, compute: ComputeModel, policy: LinkPolicy) -> Self {
        ClusterSim {
            cfg,
            compute,
            policy,
            overlap_allreduce: false,
            fabric: None,
            record: true,
        }
    }

    /// Overlap the gradient all-reduce with backward propagation: each
    /// layer's gradient chunk enters the link stream as soon as every GPU
    /// of the tenant has computed it, contending with the prefetches.
    pub fn overlap_allreduce(mut self, on: bool) -> Self {
        self.overlap_allreduce = on;
        self
    }

    /// Runs the cluster on a hierarchical fabric instead of one flat
    /// link: GPU flows traverse their node tier
    /// (GPU `i` lands on node `i / gpus_per_node`, tenant-major) plus the
    /// spine, and gradient all-reduce streams ride the spine alone.
    /// Without this, the simulation is byte-for-byte the legacy flat
    /// [`LinkArbiter`] path.
    pub fn with_fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// Opt out of copy-free event logging (`on = false`): per-GPU event
    /// logs, stage records and busy intervals are skipped (empty in the
    /// result) while every aggregate — breakdowns, tenant results, link
    /// busy profile, event counts — stays identical. This is what keeps
    /// a 1000-GPU step in bounded memory. Applies to shared runs; the
    /// dedicated single-GPU fast path always records.
    pub fn record_events(mut self, on: bool) -> Self {
        self.record = on;
        self
    }

    /// The hierarchical fabric, if one was configured.
    pub fn fabric(&self) -> Option<FabricSpec> {
        self.fabric
    }

    /// The platform configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The compute model.
    pub fn compute_model(&self) -> ComputeModel {
        self.compute
    }

    /// The link arbitration policy.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }

    /// Simulates one synchronized training step (plus gradient
    /// all-reduce) of every tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any tenant has zero GPUs.
    pub fn simulate(&self, tenants: &[Tenant<'_>]) -> ClusterTimeline {
        assert!(!tenants.is_empty(), "need at least one tenant");
        for t in tenants {
            assert!(t.gpus > 0, "{}: need at least one GPU", t.spec.name());
        }
        // Dedicated fast path: one tenant on one GPU of a *flat* fabric
        // has nothing to arbitrate, so the cluster IS the single-GPU
        // timeline — bit-identically, the same way StepSim wraps
        // TimelineSim. A hierarchical fabric still arbitrates (node tier
        // plus spine), so it always takes the shared path.
        if self.fabric.is_none() {
            if let [t] = tenants {
                if t.gpus == 1 {
                    return self.dedicated(t);
                }
            }
        }
        self.shared(tenants)
    }

    fn dedicated(&self, t: &Tenant<'_>) -> ClusterTimeline {
        let tl = TimelineSim::new(self.cfg, self.compute).simulate(t.spec, t.source);
        let total = tl.total();
        let result = TenantResult {
            network: t.spec.name().to_owned(),
            gpus: 1,
            step: tl.breakdown,
            step_end: total,
            allreduce: 0.0,
            allreduce_span: None,
            total,
        };
        let link_busy = tl.busy(Resource::Link).to_vec();
        let events_processed = tl.events_processed();
        ClusterTimeline {
            gpus: vec![tl],
            gpu_tenant: vec![0],
            tenants: vec![result],
            link_busy,
            node_busy: Vec::new(),
            spine_wire_bytes: 0.0,
            node_wire_bytes: Vec::new(),
            makespan: total,
            events_processed,
            policy: self.policy,
        }
    }

    /// Builds the per-GPU stage program of one tenant, mirroring
    /// `TimelineSim::simulate`'s forward/backward structure with all
    /// batch-linear quantities scaled by `1/gpus`.
    fn plan(&self, t: &Tenant<'_>) -> Vec<StagePlan> {
        let spec = t.spec;
        let batch = spec.batch();
        let layers = spec.layers();
        let scale = 1.0 / t.gpus as f64;
        let mut plan = Vec::with_capacity(2 * layers.len() + 1);
        for (i, layer) in layers.iter().enumerate() {
            let payload = if i == 0 {
                t.source.input_payload(spec)
            } else {
                t.source.layer_payload(spec, i - 1)
            };
            plan.push(StagePlan {
                phase: Phase::Forward,
                layer: i,
                compute: self.compute.forward_time(layer, batch) * scale,
                demand: offload_demand(&self.cfg, payload, scale),
                offload: true,
                event_layer: if i > 0 { Some(i - 1) } else { None },
                record: true,
            });
        }
        if !layers.is_empty() {
            // Serial head prefetch of the deepest offloaded input.
            let head = layers.len().saturating_sub(2);
            plan.push(StagePlan {
                phase: Phase::Backward,
                layer: head,
                compute: 0.0,
                demand: prefetch_demand(&self.cfg, t.source.layer_payload(spec, head), scale),
                offload: false,
                event_layer: Some(head),
                record: false,
            });
            for (i, layer) in layers.iter().enumerate().rev() {
                let demand = if i >= 2 {
                    prefetch_demand(&self.cfg, t.source.layer_payload(spec, i - 2), scale)
                } else {
                    None
                };
                plan.push(StagePlan {
                    phase: Phase::Backward,
                    layer: i,
                    compute: self.compute.backward_time(layer, batch) * scale,
                    demand,
                    offload: false,
                    event_layer: if i >= 2 { Some(i - 2) } else { None },
                    record: true,
                });
            }
        }
        plan
    }

    fn shared(&self, tenants: &[Tenant<'_>]) -> ClusterTimeline {
        let mut engine = SharedEngine::new(self, tenants);
        engine.run();
        engine.finish(self.policy)
    }
}

/// What a completed link request belongs to.
#[derive(Debug, Clone, Copy)]
enum Owner {
    Stage { gpu: usize },
    AllReduce { tenant: usize },
}

struct Waiting {
    start: f64,
    compute_end: f64,
}

struct GpuRun {
    tenant: usize,
    flow: FlowId,
    next_stage: usize,
    seq: u64,
    /// Whether the detailed log (events, stages, busy) is retained;
    /// `seq` counts events either way, so event *counts* are identical.
    record: bool,
    events: Vec<(f64, u64, EventKind)>,
    stages: Vec<StageRecord>,
    busy: [Vec<(f64, f64)>; 3],
    breakdown: StepBreakdown,
    waiting: Option<Waiting>,
    finished_at: Option<f64>,
}

impl GpuRun {
    fn push_event(&mut self, time: f64, kind: EventKind) {
        if self.record {
            self.events.push((time, self.seq, kind));
        }
        self.seq += 1;
    }
}

struct TenantRun {
    gpus: usize,
    running: usize,
    step_end: f64,
    allreduce: Option<GradientAllReduce>,
    allreduce_flow: Option<FlowId>,
    /// Per-layer ring wire bytes (overlap mode).
    layer_wire: Vec<f64>,
    /// GPUs still owing each backward layer (overlap mode).
    layer_pending: HashMap<usize, (usize, f64)>,
    chunks_in_flight: usize,
    allreduce_start: Option<f64>,
    allreduce_end: f64,
}

/// The shared-link event loop: per-GPU stage machines plus the arbiter,
/// advanced strictly in time order.
struct SharedEngine {
    plans: Vec<Vec<StagePlan>>,
    fidelities: Vec<&'static str>,
    networks: Vec<String>,
    links: Links,
    gpus: Vec<GpuRun>,
    tenants: Vec<TenantRun>,
    owners: HashMap<RequestId, Owner>,
    /// Stage-start events: pops the earliest start first, ties by
    /// insertion order (the calendar queue's sequence numbers).
    starts: CalendarQueue<usize>,
    overlap: bool,
}

impl SharedEngine {
    fn new(sim: &ClusterSim, tenants: &[Tenant<'_>]) -> Self {
        let mut links = match sim.fabric {
            None => Links::Flat(LinkArbiter::new(sim.cfg.pcie_bw, sim.policy)),
            Some(spec) => {
                let total: usize = tenants.iter().map(|t| t.gpus).sum();
                assert!(
                    total <= spec.capacity(),
                    "{total} GPUs exceed the fabric capacity {}",
                    spec.capacity()
                );
                Links::Fabric(Box::new(FluidFabric::new(spec)))
            }
        };
        let mut gpus = Vec::new();
        let mut tenant_runs = Vec::new();
        let mut plans = Vec::new();
        let mut fidelities = Vec::new();
        let mut networks = Vec::new();
        for (ti, t) in tenants.iter().enumerate() {
            plans.push(sim.plan(t));
            fidelities.push(t.source.fidelity());
            networks.push(t.spec.name().to_owned());
            let allreduce = (t.gpus > 1).then(|| GradientAllReduce::ring(t.spec, t.gpus));
            // Gradient rings cross between nodes: spine-only traffic on a
            // hierarchical fabric.
            let allreduce_flow =
                allreduce.map(|_| links.flow(&format!("{}.allreduce", t.spec.name()), None));
            // Overlap mode splits the same checked ring total into
            // per-layer chunks — both modes go through the one audited
            // weight-count-to-bytes conversion.
            let layer_wire = match (&allreduce, sim.overlap_allreduce) {
                (Some(ar), true) => ar
                    .per_layer_wire_bytes(t.spec)
                    .into_iter()
                    .map(|b| b as f64)
                    .collect(),
                _ => Vec::new(),
            };
            tenant_runs.push(TenantRun {
                gpus: t.gpus,
                running: t.gpus,
                step_end: 0.0,
                allreduce,
                allreduce_flow,
                layer_wire,
                layer_pending: HashMap::new(),
                chunks_in_flight: 0,
                allreduce_start: None,
                allreduce_end: 0.0,
            });
            for k in 0..t.gpus {
                let node = sim.fabric.map(|f| f.node_of(gpus.len()));
                let flow = links.flow(&format!("{}.gpu{k}", t.spec.name()), node);
                gpus.push(GpuRun {
                    tenant: ti,
                    flow,
                    next_stage: 0,
                    seq: 0,
                    record: sim.record,
                    events: Vec::new(),
                    stages: Vec::new(),
                    busy: [Vec::new(), Vec::new(), Vec::new()],
                    breakdown: StepBreakdown {
                        forward: 0.0,
                        backward: 0.0,
                        forward_stall: 0.0,
                        backward_stall: 0.0,
                    },
                    waiting: None,
                    finished_at: None,
                });
            }
        }
        SharedEngine {
            plans,
            fidelities,
            networks,
            links,
            gpus,
            tenants: tenant_runs,
            owners: HashMap::new(),
            starts: CalendarQueue::new(),
            overlap: sim.overlap_allreduce,
        }
    }

    fn push_start(&mut self, time: f64, gpu: usize) {
        self.starts.push(time, gpu);
    }

    fn run(&mut self) {
        for gpu in 0..self.gpus.len() {
            self.push_start(0.0, gpu);
        }
        loop {
            let t_start = self.starts.min_time();
            let t_arb = self.links.next_event();
            let t = match (t_start, t_arb) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            // The arbiter never completes anything strictly before its
            // reported next event, so advancing to `t` surfaces
            // completions only at exactly `t` — follow-on submissions
            // can never land in the past.
            self.links.advance_to(t.max(self.links.now()));
            for (req, tc) in self.links.take_completions() {
                self.handle_completion(req, tc);
            }
            while self.starts.min_time().is_some_and(|t0| t0 <= t) {
                let (time, gpu) = self.starts.pop().expect("peeked");
                debug_assert!(time >= self.links.now() - 1e-12, "stage start in the past");
                self.start_stage(gpu, time.max(self.links.now()));
            }
        }
    }

    fn start_stage(&mut self, gpu: usize, t: f64) {
        let run = &mut self.gpus[gpu];
        let plan = &self.plans[run.tenant][run.next_stage];
        if plan.compute > 0.0 {
            let (phase, layer) = (plan.phase, plan.layer);
            run.push_event(t, EventKind::ComputeStart { phase, layer });
            run.push_event(t + plan.compute, EventKind::ComputeEnd { phase, layer });
            if run.record {
                push_busy(
                    &mut run.busy[Resource::Compute as usize],
                    t,
                    t + plan.compute,
                );
            }
        }
        let compute_end = t + plan.compute;
        match plan.demand {
            None => {
                self.finish_stage(gpu, t, compute_end, None);
            }
            Some(d) => {
                let start_kind = if plan.offload {
                    EventKind::OffloadStart {
                        layer: plan.event_layer,
                    }
                } else {
                    EventKind::PrefetchStart {
                        layer: plan.event_layer.expect("prefetches name a layer"),
                    }
                };
                run.push_event(t, start_kind);
                run.waiting = Some(Waiting {
                    start: t,
                    compute_end,
                });
                let flow = run.flow;
                let req = self.links.submit(flow, t, d.wire_bytes, d.max_rate);
                self.owners.insert(req, Owner::Stage { gpu });
            }
        }
    }

    /// Closes the stage a GPU was running: books the transfer end (if
    /// any), the stage record and the breakdown, then schedules the next
    /// stage or retires the GPU.
    fn finish_stage(&mut self, gpu: usize, start: f64, end: f64, transfer_end: Option<f64>) {
        let run = &mut self.gpus[gpu];
        let plan = &self.plans[run.tenant][run.next_stage];
        let transfer = match transfer_end {
            Some(tc) => {
                let end_kind = if plan.offload {
                    EventKind::OffloadEnd {
                        layer: plan.event_layer,
                    }
                } else {
                    EventKind::PrefetchEnd {
                        layer: plan.event_layer.expect("prefetches name a layer"),
                    }
                };
                run.push_event(tc, end_kind);
                if run.record {
                    push_busy(&mut run.busy[Resource::Link as usize], start, tc);
                }
                tc - start
            }
            None => 0.0,
        };
        let dur = end - start;
        let stall = (transfer - plan.compute).max(0.0);
        match plan.phase {
            Phase::Forward => {
                run.breakdown.forward += dur;
                run.breakdown.forward_stall += stall;
            }
            Phase::Backward => {
                run.breakdown.backward += dur;
                run.breakdown.backward_stall += stall;
            }
        }
        if plan.record && run.record {
            run.stages.push(StageRecord {
                phase: plan.phase,
                layer: plan.layer,
                start,
                compute: plan.compute,
                transfer,
                end,
            });
        }
        let backward_layer =
            (self.overlap && plan.record && plan.phase == Phase::Backward).then_some(plan.layer);
        let tenant = run.tenant;
        run.next_stage += 1;
        let retired = run.next_stage == self.plans[tenant].len();
        if retired {
            run.finished_at = Some(end);
        } else {
            self.push_start(end, gpu);
        }
        if let Some(layer) = backward_layer {
            self.gradient_ready(tenant, layer, end);
        }
        if retired {
            let tr = &mut self.tenants[tenant];
            tr.running -= 1;
            tr.step_end = tr.step_end.max(end);
            if tr.running == 0 {
                self.step_barrier(tenant);
            }
        }
    }

    /// Overlap mode: one backward stage of `layer` finished on some GPU;
    /// once every GPU of the tenant has, the layer's gradient chunk
    /// enters the all-reduce stream.
    fn gradient_ready(&mut self, tenant: usize, layer: usize, at: f64) {
        let tr = &mut self.tenants[tenant];
        if tr.layer_wire.is_empty() {
            return;
        }
        let gpus = tr.gpus;
        let entry = tr.layer_pending.entry(layer).or_insert((gpus, 0.0));
        entry.0 -= 1;
        entry.1 = entry.1.max(at);
        if entry.0 > 0 {
            return;
        }
        let (_, ready_at) = tr.layer_pending.remove(&layer).expect("entry present");
        let wire = tr.layer_wire[layer];
        if wire <= 0.0 {
            return;
        }
        let flow = tr.allreduce_flow.expect("overlap implies a gradient flow");
        tr.chunks_in_flight += 1;
        tr.allreduce_start = Some(tr.allreduce_start.map_or(ready_at, |s| s.min(ready_at)));
        let req = self
            .links
            .submit(flow, ready_at.max(self.links.now()), wire, f64::INFINITY);
        self.owners.insert(req, Owner::AllReduce { tenant });
    }

    /// Every GPU of the tenant finished its step: launch the serialized
    /// ring all-reduce (unless overlapped, where the chunks already flow).
    fn step_barrier(&mut self, tenant: usize) {
        let tr = &mut self.tenants[tenant];
        let Some(ar) = tr.allreduce else { return };
        if !tr.layer_wire.is_empty() {
            return; // overlap mode: chunks were submitted layer by layer
        }
        let wire = ar.total_wire_bytes() as f64;
        if wire <= 0.0 {
            return;
        }
        let flow = tr.allreduce_flow.expect("multi-GPU tenants have a flow");
        tr.chunks_in_flight += 1;
        tr.allreduce_start = Some(tr.step_end);
        let at = tr.step_end.max(self.links.now());
        let req = self.links.submit(flow, at, wire, f64::INFINITY);
        self.owners.insert(req, Owner::AllReduce { tenant });
    }

    fn handle_completion(&mut self, req: RequestId, tc: f64) {
        match self
            .owners
            .remove(&req)
            .expect("completed request is owned")
        {
            Owner::Stage { gpu } => {
                let w = self.gpus[gpu].waiting.take().expect("stage in flight");
                let end = w.compute_end.max(tc);
                self.finish_stage(gpu, w.start, end, Some(tc));
            }
            Owner::AllReduce { tenant } => {
                let tr = &mut self.tenants[tenant];
                tr.chunks_in_flight -= 1;
                tr.allreduce_end = tr.allreduce_end.max(tc);
            }
        }
    }

    fn finish(self, policy: LinkPolicy) -> ClusterTimeline {
        let mut gpu_timelines = Vec::with_capacity(self.gpus.len());
        let mut gpu_tenant = Vec::with_capacity(self.gpus.len());
        let mut per_tenant_worst: Vec<Option<StepBreakdown>> = vec![None; self.tenants.len()];
        let mut arbiter_events = self.links.events_processed();
        for run in self.gpus {
            debug_assert!(run.finished_at.is_some(), "every GPU retires");
            let mut events = run.events;
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let events: Vec<Event> = events
                .into_iter()
                .map(|(time, _, kind)| Event { time, kind })
                .collect();
            // `seq` counts every event whether or not the log was
            // retained, so opting out of recording cannot change the
            // reported event totals.
            let gpu_events = run.seq;
            debug_assert!(!run.record || gpu_events == events.len() as u64);
            arbiter_events += gpu_events;
            let worst = &mut per_tenant_worst[run.tenant];
            if worst.is_none_or(|w| run.breakdown.total() > w.total()) {
                *worst = Some(run.breakdown);
            }
            gpu_tenant.push(run.tenant);
            gpu_timelines.push(StepTimeline::from_parts(
                run.breakdown,
                self.fidelities[run.tenant],
                events,
                run.stages,
                run.busy,
                gpu_events,
            ));
        }
        let mut results = Vec::with_capacity(self.tenants.len());
        let mut makespan = 0.0f64;
        for (ti, tr) in self.tenants.iter().enumerate() {
            debug_assert_eq!(tr.chunks_in_flight, 0, "gradient stream drained");
            let total = tr.step_end.max(tr.allreduce_end);
            makespan = makespan.max(total);
            results.push(TenantResult {
                network: self.networks[ti].clone(),
                gpus: tr.gpus,
                step: per_tenant_worst[ti].expect("tenant has GPUs"),
                step_end: tr.step_end,
                allreduce: (tr.allreduce_end - tr.step_end).max(0.0),
                allreduce_span: tr.allreduce_start.map(|s| (s, tr.allreduce_end.max(s))),
                total,
            });
        }
        let (spine_wire_bytes, node_wire_bytes) = self.links.wire_totals();
        ClusterTimeline {
            gpus: gpu_timelines,
            gpu_tenant,
            tenants: results,
            link_busy: self.links.link_busy().to_vec(),
            node_busy: self.links.node_busy().to_vec(),
            spine_wire_bytes,
            node_wire_bytes,
            makespan,
            events_processed: arbiter_events,
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::UniformRatio;
    use crate::CudnnVersion;
    use cdma_models::zoo;

    fn sim(policy: LinkPolicy) -> ClusterSim {
        ClusterSim::new(
            SystemConfig::titan_x_pcie3(),
            ComputeModel::titan_x(CudnnVersion::V5),
            policy,
        )
    }

    #[test]
    fn ring_allreduce_bytes_are_exact() {
        let spec = zoo::alexnet();
        let ar = GradientAllReduce::ring(&spec, 4);
        assert_eq!(ar.weight_bytes(), spec.total_params() * 4);
        assert_eq!(ar.total_wire_bytes(), spec.total_params() * 4 * 6);
        assert_eq!(GradientAllReduce::ring(&spec, 1).total_wire_bytes(), 0);
        let per_gpu = ar.per_gpu_wire_bytes();
        assert!((per_gpu * 4.0 - ar.total_wire_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn symmetric_gpus_finish_together_under_fair_share() {
        let spec = zoo::squeezenet();
        let source = UniformRatio::uniform(&spec, 2.6);
        let tl = sim(LinkPolicy::BandwidthShare).simulate(&[Tenant {
            spec: &spec,
            source: &source,
            gpus: 4,
        }]);
        assert_eq!(tl.gpus().len(), 4);
        let t0 = tl.gpu(0).total();
        for g in tl.gpus() {
            assert_eq!(g.total().to_bits(), t0.to_bits(), "symmetric GPUs diverged");
        }
        let t = &tl.tenants()[0];
        assert!(t.allreduce > 0.0, "4-GPU tenant all-reduces");
        assert!((t.total - (t.step_end + t.allreduce)).abs() < 1e-12);
        assert!(tl.link_utilisation() > 0.0 && tl.link_utilisation() <= 1.0 + 1e-12);
    }

    #[test]
    fn more_gpus_stall_more_per_gpu() {
        // The Section IX effect: compute shrinks with the per-GPU batch,
        // activation transfer time does not (the link share thins at the
        // same rate), so the stall fraction grows with g.
        let spec = zoo::vgg();
        let source = UniformRatio::uniform(&spec, 1.0);
        let mut prev = 0.0;
        for g in [1usize, 2, 4, 8] {
            let tl = sim(LinkPolicy::BandwidthShare).simulate(&[Tenant {
                spec: &spec,
                source: &source,
                gpus: g,
            }]);
            let frac = tl.tenants()[0].step.stall_fraction();
            assert!(
                frac >= prev - 1e-12,
                "stall fraction should grow with g: {frac} after {prev}"
            );
            prev = frac;
        }
    }

    #[test]
    fn second_tenant_never_speeds_up_the_first() {
        let a = zoo::alexnet();
        let b = zoo::vgg();
        let sa = UniformRatio::uniform(&a, 2.0);
        let sb = UniformRatio::uniform(&b, 2.0);
        for policy in LinkPolicy::ALL {
            let alone = sim(policy).simulate(&[Tenant {
                spec: &a,
                source: &sa,
                gpus: 2,
            }]);
            let shared = sim(policy).simulate(&[
                Tenant {
                    spec: &a,
                    source: &sa,
                    gpus: 2,
                },
                Tenant {
                    spec: &b,
                    source: &sb,
                    gpus: 2,
                },
            ]);
            assert!(
                shared.tenants()[0].total >= alone.tenants()[0].total - 1e-9,
                "{policy}: tenant sped up under contention"
            );
            assert_eq!(shared.gpus().len(), 4);
            assert_eq!(shared.tenant_of(0), 0);
            assert_eq!(shared.tenant_of(2), 1);
        }
    }

    #[test]
    fn overlapped_allreduce_is_never_slower() {
        let spec = zoo::alexnet();
        let source = UniformRatio::uniform(&spec, 2.6);
        let tenant = [Tenant {
            spec: &spec,
            source: &source,
            gpus: 4,
        }];
        let serial = sim(LinkPolicy::BandwidthShare).simulate(&tenant);
        let overlapped = sim(LinkPolicy::BandwidthShare)
            .overlap_allreduce(true)
            .simulate(&tenant);
        assert!(overlapped.tenants()[0].total <= serial.tenants()[0].total + 1e-9);
        // AlexNet is weight-heavy: hiding the ring behind backward must
        // actually help, not just tie.
        assert!(overlapped.tenants()[0].total < serial.tenants()[0].total * 0.999);
        let span = overlapped.tenants()[0]
            .allreduce_span
            .expect("gradients flowed");
        assert!(span.0 < overlapped.tenants()[0].step_end);
    }

    #[test]
    fn per_gpu_busy_intervals_never_overlap() {
        let spec = zoo::googlenet();
        let source = UniformRatio::uniform(&spec, 1.3);
        for policy in LinkPolicy::ALL {
            let tl = sim(policy).simulate(&[Tenant {
                spec: &spec,
                source: &source,
                gpus: 3,
            }]);
            for g in tl.gpus() {
                for r in [Resource::Compute, Resource::DmaRead, Resource::Link] {
                    let mut prev = f64::NEG_INFINITY;
                    for &(s, e) in g.busy(r) {
                        assert!(e > s && s >= prev - 1e-12, "{policy}: {r:?} double-booked");
                        prev = e;
                    }
                }
                let mut prev = 0.0;
                for e in g.events() {
                    assert!(e.time >= prev, "{policy}: event log out of order");
                    prev = e.time;
                }
            }
        }
    }
}
