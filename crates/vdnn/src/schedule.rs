use cdma_gpusim::SystemConfig;
use cdma_models::NetworkSpec;

use crate::timeline::{TimelineSim, UniformRatio};
use crate::ComputeModel;

/// What travels over the CPU–GPU link during a training step.
#[derive(Debug, Clone)]
pub enum TransferPolicy {
    /// No transfers (the paper's "orac" baseline: offload/prefetch latency
    /// always hidden).
    Oracle,
    /// Offload every layer output; element `i` is the compression ratio of
    /// layer `i`'s activations (1.0 everywhere = plain vDNN).
    OffloadAll(Vec<f64>),
    /// Offload only convolution-layer outputs (vDNN's memory-saving
    /// alternative policy), with per-layer ratios as above.
    OffloadConv(Vec<f64>),
}

impl TransferPolicy {
    /// Offload-all with one uniform ratio (1.0 reproduces baseline vDNN).
    pub fn uniform(spec: &NetworkSpec, ratio: f64) -> Self {
        TransferPolicy::OffloadAll(vec![ratio; spec.layers().len()])
    }
}

/// Timing breakdown of one simulated training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBreakdown {
    /// Forward compute + stalls, seconds.
    pub forward: f64,
    /// Backward compute + stalls, seconds.
    pub backward: f64,
    /// Seconds of forward time attributable to offload stalls.
    pub forward_stall: f64,
    /// Seconds of backward time attributable to prefetch stalls.
    pub backward_stall: f64,
}

impl StepBreakdown {
    /// Total step latency.
    pub fn total(&self) -> f64 {
        self.forward + self.backward
    }

    /// Fraction of the step spent stalled on PCIe.
    pub fn stall_fraction(&self) -> f64 {
        (self.forward_stall + self.backward_stall) / self.total()
    }
}

/// Layer-by-layer timeline simulation of vDNN's offload/prefetch overlap
/// (Fig. 2b of the paper).
///
/// During forward propagation, layer *n*'s computation overlaps with the
/// offload of its input activations; the next layer cannot start until both
/// finish, so each forward stage takes `max(compute, offload)`. During
/// backward propagation the prefetch of layer *n−1*'s activations overlaps
/// with layer *n*'s backward computation, with a serial prefetch of the
/// deepest layer's activations at the start.
///
/// Transfers move at the paper's analytically-throttled effective bandwidth
/// ([`SystemConfig::effective_offload_bw`]): `PCIe × ratio`, capped by the
/// provisioned compression read bandwidth `COMP_BW`.
///
/// `StepSim` is a thin wrapper over the event-driven
/// [`TimelineSim`](crate::timeline::TimelineSim) with the
/// [`UniformRatio`](crate::timeline::UniformRatio) source — the analytic
/// fidelity level. Use the timeline directly for the event log, per-stage
/// records, or the higher-fidelity
/// [`ProfiledDensity`](crate::timeline::ProfiledDensity) /
/// [`MeasuredStream`](crate::timeline::MeasuredStream) sources.
#[derive(Debug, Clone, Copy)]
pub struct StepSim {
    cfg: SystemConfig,
    compute: ComputeModel,
}

impl StepSim {
    /// Creates a simulator.
    pub fn new(cfg: SystemConfig, compute: ComputeModel) -> Self {
        StepSim { cfg, compute }
    }

    /// The platform configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The equivalent event-driven simulator.
    pub fn timeline(&self) -> TimelineSim {
        TimelineSim::new(self.cfg, self.compute)
    }

    /// Simulates one training step of `spec` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if a ratio vector's length does not match the layer count.
    pub fn step_time(&self, spec: &NetworkSpec, policy: TransferPolicy) -> StepBreakdown {
        let source = UniformRatio::new(spec, policy);
        self.timeline().simulate(spec, &source).breakdown
    }

    /// Performance of `policy` normalized to the oracle baseline (the
    /// y-axis of Fig. 13; 1.0 = no virtualization overhead).
    pub fn normalized_performance(&self, spec: &NetworkSpec, policy: TransferPolicy) -> f64 {
        let oracle = self.step_time(spec, TransferPolicy::Oracle).total();
        let t = self.step_time(spec, policy).total();
        oracle / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CudnnVersion;
    use cdma_models::zoo;

    fn sim(v: CudnnVersion) -> StepSim {
        StepSim::new(SystemConfig::titan_x_pcie3(), ComputeModel::titan_x(v))
    }

    #[test]
    fn oracle_equals_pure_compute() {
        let spec = zoo::alexnet();
        let s = sim(CudnnVersion::V5);
        let oracle = s.step_time(&spec, TransferPolicy::Oracle);
        let compute = ComputeModel::titan_x(CudnnVersion::V5).step_compute_time(&spec);
        assert!((oracle.total() - compute).abs() / compute < 1e-9);
        assert_eq!(oracle.forward_stall, 0.0);
        assert_eq!(oracle.backward_stall, 0.0);
    }

    #[test]
    fn vdnn_is_never_faster_than_oracle() {
        let s = sim(CudnnVersion::V5);
        for spec in zoo::all_networks() {
            let perf = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0));
            assert!(perf <= 1.0 + 1e-9, "{}: {perf}", spec.name());
        }
    }

    #[test]
    fn vdnn_overhead_matches_paper_band_on_v5() {
        // Section I / Fig. 3b: vDNN loses 31% on average (worst 52%)
        // versus the oracle on cuDNN v5-class compute.
        let s = sim(CudnnVersion::V5);
        let perfs: Vec<f64> = zoo::all_networks()
            .iter()
            .map(|spec| s.normalized_performance(spec, TransferPolicy::uniform(spec, 1.0)))
            .collect();
        let avg_loss = 1.0 - perfs.iter().sum::<f64>() / perfs.len() as f64;
        let worst_loss = 1.0 - perfs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (0.18..0.45).contains(&avg_loss),
            "avg vDNN loss {avg_loss:.3}, paper ~0.31 (perfs {perfs:?})"
        );
        assert!(
            (0.35..0.65).contains(&worst_loss),
            "worst vDNN loss {worst_loss:.3}, paper ~0.52"
        );
    }

    #[test]
    fn overhead_grows_with_cudnn_version() {
        // Fig. 3(b): faster compute shrinks the overlap window, so the
        // vDNN penalty grows from v1 to v5.
        let spec = zoo::squeezenet();
        let mut prev_perf = 0.0;
        for v in CudnnVersion::ALL {
            let perf = sim(v).normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0));
            if prev_perf > 0.0 {
                assert!(
                    perf <= prev_perf + 1e-9,
                    "{}: perf {perf} should not exceed {prev_perf}",
                    v.label()
                );
            }
            prev_perf = perf;
        }
    }

    #[test]
    fn compression_recovers_performance() {
        let s = sim(CudnnVersion::V5);
        for spec in zoo::all_networks() {
            let vdnn = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, 1.0));
            let cdma = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, 2.6));
            assert!(
                cdma > vdnn,
                "{}: cDMA {cdma} should beat vDNN {vdnn}",
                spec.name()
            );
        }
    }

    #[test]
    fn infinite_compression_approaches_oracle() {
        let s = sim(CudnnVersion::V5);
        let spec = zoo::vgg();
        // Ratio beyond COMP_BW/PCIe: transfers still take bytes/COMP_BW, so
        // performance approaches but does not exceed the oracle.
        let perf = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, 1000.0));
        assert!(perf > 0.9 && perf <= 1.0 + 1e-9, "perf {perf}");
    }

    #[test]
    fn conv_only_policy_transfers_less() {
        let s = sim(CudnnVersion::V5);
        let spec = zoo::vgg();
        let all = s
            .step_time(&spec, TransferPolicy::uniform(&spec, 1.0))
            .total();
        let conv = s
            .step_time(
                &spec,
                TransferPolicy::OffloadConv(vec![1.0; spec.layers().len()]),
            )
            .total();
        assert!(conv <= all);
    }

    #[test]
    fn stall_fraction_is_consistent() {
        let s = sim(CudnnVersion::V5);
        let spec = zoo::squeezenet();
        let b = s.step_time(&spec, TransferPolicy::uniform(&spec, 1.0));
        assert!(b.stall_fraction() > 0.0 && b.stall_fraction() < 1.0);
        assert!(b.forward_stall <= b.forward);
    }

    #[test]
    #[should_panic(expected = "one compression ratio per layer")]
    fn wrong_ratio_length_rejected() {
        let s = sim(CudnnVersion::V5);
        let spec = zoo::alexnet();
        let _ = s.step_time(&spec, TransferPolicy::OffloadAll(vec![1.0; 3]));
    }
}
