//! GPU memory-footprint accounting — the *reason* vDNN exists.
//!
//! Section III: "for training DNNs, these activation maps occupy more than
//! 90% of the GPU-side memory allocations", and offloading them is what
//! lets networks larger than physical GPU memory train at all. This module
//! quantifies the footprint with and without offloading, which also bounds
//! how much memory cDMA's virtualization preserves (cDMA changes the PCIe
//! traffic, not the GPU-side allocation — Section IX discusses compressed
//! in-DRAM storage as future work, modelled in `cdma-gpusim::dram_store`).

use cdma_models::NetworkSpec;

/// GPU memory footprint of one training iteration, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Weight (parameter) storage.
    pub weights: u64,
    /// Weight gradients + optimizer momentum (2× weights for SGD+momentum).
    pub optimizer_state: u64,
    /// Activation maps resident in GPU memory.
    pub activations: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.optimizer_state + self.activations
    }

    /// Fraction of the footprint that is activation maps.
    pub fn activation_fraction(&self) -> f64 {
        self.activations as f64 / self.total() as f64
    }
}

/// Baseline (no virtualization): every layer's output activations stay
/// resident until backward propagation consumes them.
pub fn baseline_footprint(spec: &NetworkSpec) -> MemoryFootprint {
    MemoryFootprint {
        weights: spec.weight_bytes(),
        optimizer_state: 2 * spec.weight_bytes(),
        activations: input_bytes(spec) + spec.total_activation_bytes(),
    }
}

/// vDNN with the offload-all policy: the GPU keeps only the activations the
/// layer currently executing touches (its input and output), plus a
/// prefetch buffer for the next transfer — the two-layer sliding window of
/// Fig. 2(b).
pub fn vdnn_footprint(spec: &NetworkSpec) -> MemoryFootprint {
    let batch = spec.batch();
    let mut peak_window = 0u64;
    let mut prev_out = input_bytes(spec);
    for layer in spec.layers() {
        let out = layer.activation_bytes(batch);
        // Working set: this layer's input + output, plus one more input
        // buffer being prefetched/offloaded concurrently.
        let window = prev_out + out + prev_out;
        peak_window = peak_window.max(window);
        prev_out = out;
    }
    MemoryFootprint {
        weights: spec.weight_bytes(),
        optimizer_state: 2 * spec.weight_bytes(),
        activations: peak_window,
    }
}

/// Memory saved by vDNN's offloading as a fraction of the baseline.
pub fn vdnn_savings(spec: &NetworkSpec) -> f64 {
    let base = baseline_footprint(spec).total();
    let vdnn = vdnn_footprint(spec).total();
    1.0 - vdnn as f64 / base as f64
}

fn input_bytes(spec: &NetworkSpec) -> u64 {
    (spec.input().per_image() * spec.batch() * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_models::zoo;

    #[test]
    fn activations_dominate_the_footprint() {
        // Section III's ">90%" claim holds for the activation-heavy
        // networks; the average across all six is high as well.
        let mut fractions = Vec::new();
        for spec in zoo::all_networks() {
            let f = baseline_footprint(&spec).activation_fraction();
            fractions.push(f);
        }
        let vgg = baseline_footprint(&zoo::vgg()).activation_fraction();
        let squeeze = baseline_footprint(&zoo::squeezenet()).activation_fraction();
        assert!(vgg > 0.80, "VGG activation fraction {vgg}");
        assert!(squeeze > 0.95, "SqueezeNet activation fraction {squeeze}");
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        assert!(avg > 0.75, "average activation fraction {avg}");
    }

    #[test]
    fn vdnn_offloading_reclaims_most_activation_memory() {
        // Savings scale with how activation-heavy the network is: the
        // fc-dominated nets (AlexNet/OverFeat) keep their big weight and
        // optimizer state, while the conv-only deep nets nearly halve.
        for spec in zoo::all_networks() {
            let saving = vdnn_savings(&spec);
            assert!(
                saving > 0.10,
                "{}: vDNN saves only {:.0}%",
                spec.name(),
                saving * 100.0
            );
        }
        for name_spec in [zoo::nin(), zoo::squeezenet(), zoo::googlenet()] {
            assert!(
                vdnn_savings(&name_spec) > 0.45,
                "{}: {:.0}%",
                name_spec.name(),
                vdnn_savings(&name_spec) * 100.0
            );
        }
    }

    #[test]
    fn footprints_are_internally_consistent() {
        let spec = zoo::alexnet();
        let base = baseline_footprint(&spec);
        let vdnn = vdnn_footprint(&spec);
        assert_eq!(base.weights, spec.weight_bytes());
        assert_eq!(base.optimizer_state, 2 * base.weights);
        assert!(vdnn.activations < base.activations);
        assert_eq!(vdnn.weights, base.weights);
        assert_eq!(
            base.total(),
            base.weights + base.optimizer_state + base.activations
        );
    }

    #[test]
    fn baseline_strains_contemporary_gpu_memory() {
        // The motivating scenario: SqueezeNet@512 (10.6 GB) and VGG@128
        // (9.5 GB) barely fit — or don't fit — 2016-era 8 GB GPUs, and our
        // accounting omits cuDNN workspace, which pushes the real numbers
        // past even the 12 GB Titan X the paper uses.
        let eight_gb = 8u64 << 30;
        assert!(baseline_footprint(&zoo::squeezenet()).total() > eight_gb);
        assert!(baseline_footprint(&zoo::vgg()).total() > eight_gb);
        // vDNN roughly halves both, restoring comfortable headroom.
        assert!(vdnn_footprint(&zoo::squeezenet()).total() < (6u64 << 30));
        assert!(vdnn_footprint(&zoo::vgg()).total() < (7u64 << 30));
    }
}
