//! # Event-driven training-step timeline
//!
//! [`TimelineSim`] simulates one training step as a stream of timestamped
//! events over three shared resources — the GPU **compute** stream, the
//! cDMA **read path** (DRAM fetch + per-memory-controller compression), and
//! the **PCIe link** — replacing the closed-form per-layer
//! `max(compute, offload)` arithmetic that [`StepSim`](crate::StepSim) used
//! to hard-code. [`StepSim`](crate::StepSim) is now a thin wrapper over
//! this timeline with the [`UniformRatio`] source, so its numbers are
//! unchanged.
//!
//! What crosses the link is abstracted behind the [`TransferSource`] trait,
//! giving the same timeline **three fidelity levels**:
//!
//! | source | transfer payload | used by |
//! |---|---|---|
//! | [`UniformRatio`] | the paper's analytic model: per-layer scalar ratios through [`SystemConfig::effective_offload_bw`] | Fig. 3b, Fig. 13, every legacy `StepSim` caller |
//! | [`ProfiledDensity`] | analytic ratios derived from `cdma-sparsity` density trajectories at a training checkpoint | Fig. 13 per-checkpoint variants, training-run projections |
//! | [`MeasuredStream`] | real per-window `(uncompressed, compressed)` line sizes produced by `CdmaEngine::memcpy_compressed` on actual activations, driven through the incremental [`DmaPipeline`] | Fig. 2 timeline, measured-fidelity experiments |
//!
//! At the measured level each offload's 4 KB lines are pushed into one
//! [`DmaPipeline`] shared across the whole step, released at their stage's
//! start time — the transfer is scheduled on the step's own clock and
//! overlaps that layer's compute, rather than being timed as an isolated
//! standalone run. (Under vDNN's stage barrier the pipeline always drains
//! before the next stage begins; the incremental form is what lets looser
//! schedules interleave lines across stages.)
//!
//! The simulation reproduces vDNN's synchronization (Fig. 2 of the paper):
//! forward stage *n* computes layer *n* while offloading layer *n−1*'s
//! output, and stage *n+1* starts only when both finish; backward stage *n*
//! overlaps its computation with the prefetch for stage *n−1*, after a
//! serial prefetch of the deepest offloaded input.
//!
//! The CPU→GPU (prefetch) direction has one source of truth,
//! [`prefetch_seconds`]: the link moves compressed bytes while the
//! memory-controller engines decompress at their aggregate throughput,
//! whichever is slower. `CdmaEngine::prefetch_time` delegates here.

use cdma_compress::Algorithm;
use cdma_gpusim::{DmaPipeline, SystemConfig, ZvcEngine};
use cdma_models::profiles::NetworkProfile;
use cdma_models::NetworkSpec;
use cdma_tensor::Layout;

use crate::calendar::CalendarQueue;
use crate::{ComputeModel, RatioTable, StepBreakdown, TransferPolicy};

/// Seconds to move `compressed_bytes` CPU→GPU and re-inflate them to
/// `uncompressed_bytes`: the link drains the compressed stream while the
/// memory-controller engines decompress at their aggregate throughput, so
/// the slower of the two dominates. The single source of truth for the
/// prefetch direction (`CdmaEngine::prefetch_time` and the timeline's
/// measured prefetch path both call this).
pub fn prefetch_seconds(cfg: &SystemConfig, uncompressed_bytes: u64, compressed_bytes: u64) -> f64 {
    let link = compressed_bytes as f64 / cfg.pcie_bw;
    let engines = ZvcEngine::new(cfg.engine_clock);
    let decompress = uncompressed_bytes as f64 / engines.aggregate_throughput(cfg.mem_controllers);
    link.max(decompress)
}

/// Arbitration policy of a host link shared by several DMA streams
/// (Section IX: 4–8 GPUs on one channel).
///
/// The policy decides how [`LinkArbiter`] splits the wire among
/// concurrently backlogged flows; [`LinkPolicy::BandwidthShare`] is the
/// idealized fair split whose contention-free symmetric case reduces to
/// the paper's static `PCIe / g` division, [`LinkPolicy::RoundRobin`] is
/// the quantum-serialized arbitration real DMA engines implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPolicy {
    /// Fluid fair sharing: backlogged flows split the wire evenly, with
    /// water-filling redistribution when a flow is capped below its fair
    /// share (e.g. its compression engine cannot feed the link faster).
    BandwidthShare,
    /// Quantum round-robin: the link serves one flow at a time, a bounded
    /// burst per turn, cycling over backlogged flows in submission order.
    RoundRobin,
}

impl LinkPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [LinkPolicy; 2] = [LinkPolicy::BandwidthShare, LinkPolicy::RoundRobin];

    /// The stable label used in scenario keys and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            LinkPolicy::BandwidthShare => "bandwidth-share",
            LinkPolicy::RoundRobin => "round-robin",
        }
    }
}

impl std::fmt::Display for LinkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for LinkPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bandwidth-share" | "share" | "fair" => Ok(LinkPolicy::BandwidthShare),
            "round-robin" | "rr" => Ok(LinkPolicy::RoundRobin),
            other => Err(format!(
                "unknown link policy {other:?} (expected bandwidth-share|round-robin)"
            )),
        }
    }
}

/// Handle of one DMA stream registered with a [`LinkArbiter`] (a GPU's
/// offload/prefetch path, or a tenant's gradient all-reduce stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

impl FlowId {
    /// Mints a flow handle (shared with the hierarchical fabric, whose
    /// flows live outside this arbiter).
    pub(crate) fn from_index(i: usize) -> Self {
        FlowId(i)
    }

    /// The flow's registration index.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Handle of one transfer submitted to a [`LinkArbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(usize);

impl RequestId {
    /// Mints a request handle (shared with the hierarchical fabric).
    pub(crate) fn from_index(i: usize) -> Self {
        RequestId(i)
    }

    /// The request's submission index.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Default round-robin quantum in **wire bytes per turn**: 65536 bytes,
/// i.e. sixteen 4 KB DMA lines. Every quantum in this module is measured
/// in wire bytes (the compressed size for offloads), never in lines or
/// flits — [`LinkArbiter::with_quantum`] takes the same unit.
///
/// ```
/// use cdma_vdnn::timeline::DEFAULT_LINK_QUANTUM;
///
/// // The unit is wire bytes: sixteen 4 KB lines, not 16 "flits".
/// assert_eq!(DEFAULT_LINK_QUANTUM, 65536.0);
/// assert_eq!(DEFAULT_LINK_QUANTUM, 16.0 * 4096.0);
/// ```
pub const DEFAULT_LINK_QUANTUM: f64 = 16.0 * 4096.0;

#[derive(Debug)]
struct Flow {
    label: String,
    /// FIFO of not-yet-finished request indices (head is in service).
    queue: std::collections::VecDeque<usize>,
    offered: f64,
    delivered: f64,
}

#[derive(Debug)]
struct Request {
    flow: usize,
    arrival: f64,
    /// Cap on the instantaneous wire rate this flow can sustain
    /// (engine-bound production or consumption), bytes/second.
    max_rate: f64,
    remaining: f64,
    completion: Option<f64>,
}

/// One chunk of round-robin service in flight.
#[derive(Debug, Clone, Copy)]
struct Serving {
    req: usize,
    start: f64,
    end: f64,
    bytes: f64,
}

/// The shared host link as a discrete-event resource: `g` per-GPU DMA
/// read paths and gradient all-reduce streams contend for one wire under
/// a [`LinkPolicy`].
///
/// Flows submit transfers as *wire bytes* (compressed size for offloads)
/// plus a per-transfer rate cap modelling the compression/decompression
/// engines; the arbiter advances a fluid (bandwidth-share) or quantum
/// (round-robin) service schedule, records aggregate busy intervals, and
/// reports completions. Invariants (pinned by the seeded property loops in
/// `crates/vdnn/tests/link_arbiter_props.rs`):
///
/// * **byte conservation** — every flow's delivered bytes equal its
///   offered bytes once drained;
/// * **work conservation** — the link never idles while an uncapped flow
///   is backlogged;
/// * **round-robin fairness** — continuously backlogged flows' delivered
///   bytes never diverge by more than one quantum;
/// * **monotonicity** — adding a flow never completes an existing
///   transfer earlier (strictly under bandwidth-share; within a few
///   quanta of cursor re-phasing under round-robin).
///
/// ```
/// use cdma_vdnn::timeline::{LinkArbiter, LinkPolicy};
///
/// let mut arb = LinkArbiter::new(10.0, LinkPolicy::BandwidthShare);
/// let a = arb.flow("gpu0");
/// let b = arb.flow("gpu1");
/// let ra = arb.submit(a, 0.0, 40.0, f64::INFINITY);
/// let rb = arb.submit(b, 0.0, 40.0, f64::INFINITY);
/// arb.run_until_idle();
/// // Two symmetric flows each get half the wire: 40 bytes at 5 B/s.
/// assert_eq!(arb.completion(ra), Some(8.0));
/// assert_eq!(arb.completion(rb), Some(8.0));
/// ```
#[derive(Debug)]
pub struct LinkArbiter {
    bw: f64,
    policy: LinkPolicy,
    quantum: f64,
    now: f64,
    flows: Vec<Flow>,
    requests: Vec<Request>,
    serving: Option<Serving>,
    rr_cursor: usize,
    busy: Vec<(f64, f64)>,
    completions: Vec<(RequestId, f64)>,
    events_processed: u64,
}

impl LinkArbiter {
    /// A link of `bw` wire bytes/second under `policy`, with the
    /// [`DEFAULT_LINK_QUANTUM`] round-robin burst.
    ///
    /// # Panics
    ///
    /// Panics if `bw` is not positive and finite.
    pub fn new(bw: f64, policy: LinkPolicy) -> Self {
        LinkArbiter::with_quantum(bw, policy, DEFAULT_LINK_QUANTUM)
    }

    /// A link with an explicit round-robin quantum in wire bytes per
    /// turn (the same unit as [`DEFAULT_LINK_QUANTUM`]).
    ///
    /// # Panics
    ///
    /// Panics if `bw` or `quantum` is not positive and finite.
    pub fn with_quantum(bw: f64, policy: LinkPolicy, quantum: f64) -> Self {
        assert!(
            bw > 0.0 && bw.is_finite(),
            "link bandwidth must be positive"
        );
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "round-robin quantum must be positive"
        );
        LinkArbiter {
            bw,
            policy,
            quantum,
            now: 0.0,
            flows: Vec::new(),
            requests: Vec::new(),
            serving: None,
            rr_cursor: 0,
            busy: Vec::new(),
            completions: Vec::new(),
            events_processed: 0,
        }
    }

    /// Registers a flow (one contender for the wire).
    pub fn flow(&mut self, label: &str) -> FlowId {
        self.flows.push(Flow {
            label: label.to_owned(),
            queue: std::collections::VecDeque::new(),
            offered: 0.0,
            delivered: 0.0,
        });
        FlowId(self.flows.len() - 1)
    }

    /// Submits a transfer of `wire_bytes` on `flow`, arriving at `at`,
    /// whose service rate is additionally capped at `max_rate` wire
    /// bytes/second (pass `f64::INFINITY` for a link-bound transfer).
    /// Requests on one flow are served FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `wire_bytes` or `max_rate` is not positive, or if `at`
    /// precedes the arbiter's clock or the flow's previous submission.
    pub fn submit(&mut self, flow: FlowId, at: f64, wire_bytes: f64, max_rate: f64) -> RequestId {
        assert!(wire_bytes > 0.0, "transfer must move at least one byte");
        assert!(max_rate > 0.0, "rate cap must be positive");
        assert!(
            at >= self.now,
            "submission at {at} precedes the arbiter clock {}",
            self.now
        );
        let f = &mut self.flows[flow.0];
        if let Some(&prev) = f.queue.back() {
            assert!(
                at >= self.requests[prev].arrival,
                "per-flow submissions must be in arrival order"
            );
        }
        let id = self.requests.len();
        self.requests.push(Request {
            flow: flow.0,
            arrival: at,
            max_rate,
            remaining: wire_bytes,
            completion: None,
        });
        let f = &mut self.flows[flow.0];
        f.queue.push_back(id);
        f.offered += wire_bytes;
        RequestId(id)
    }

    /// The arbiter's clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The label a flow was registered with.
    pub fn flow_label(&self, flow: FlowId) -> &str {
        &self.flows[flow.0].label
    }

    /// Wire bytes submitted on `flow` so far.
    pub fn offered(&self, flow: FlowId) -> f64 {
        self.flows[flow.0].offered
    }

    /// Wire bytes delivered for `flow` so far (round-robin counts service
    /// at chunk completion).
    pub fn delivered(&self, flow: FlowId) -> f64 {
        self.flows[flow.0].delivered
    }

    /// Completion time of a request, once it has fully drained.
    pub fn completion(&self, req: RequestId) -> Option<f64> {
        self.requests[req.0].completion
    }

    /// Aggregate link busy intervals, time-ordered and coalesced where
    /// they touch.
    pub fn busy(&self) -> &[(f64, f64)] {
        &self.busy
    }

    /// Internal events processed so far (fluid rate changes, round-robin
    /// chunk boundaries, completions).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Completions produced since the last call, in completion order.
    pub fn take_completions(&mut self) -> Vec<(RequestId, f64)> {
        std::mem::take(&mut self.completions)
    }

    /// Wire bytes delivered across every flow (the fabric layer's
    /// conservation counter).
    pub(crate) fn delivered_total(&self) -> f64 {
        self.flows.iter().map(|f| f.delivered).sum()
    }

    /// Whether any submitted transfer still has bytes to move.
    pub fn has_backlog(&self) -> bool {
        self.flows.iter().any(|f| !f.queue.is_empty())
    }

    /// The earliest future time at which the schedule changes on its own
    /// (a completion, a chunk boundary, or a queued arrival becoming
    /// active), or `None` when fully drained.
    pub fn next_event(&self) -> Option<f64> {
        if let Some(s) = self.serving {
            return Some(s.end);
        }
        let heads = self.active_heads();
        if !heads.is_empty() {
            match self.policy {
                // A chunk is ready to start the moment we advance.
                LinkPolicy::RoundRobin => return Some(self.now),
                LinkPolicy::BandwidthShare => {
                    let rates = self.share_rates(&heads);
                    let dt = heads
                        .iter()
                        .zip(&rates)
                        .map(|(&h, &r)| self.requests[h].remaining / r)
                        .fold(f64::INFINITY, f64::min);
                    // A queued arrival re-divides the shares, so it is a
                    // schedule change even while heads are in service.
                    let completion = self.now + dt;
                    return Some(match self.next_arrival() {
                        Some(a) => completion.min(a),
                        None => completion,
                    });
                }
            }
        }
        self.next_arrival()
    }

    /// Advances the service schedule to `t` (monotone).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the arbiter clock.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.now, "cannot advance backwards");
        match self.policy {
            LinkPolicy::BandwidthShare => self.advance_share(t),
            LinkPolicy::RoundRobin => self.advance_rr(t),
        }
    }

    /// Runs the schedule until every submitted transfer has drained;
    /// returns the drain time.
    pub fn run_until_idle(&mut self) -> f64 {
        while let Some(t) = self.next_event() {
            self.advance_to(t.max(self.now));
            if !self.has_backlog() {
                break;
            }
        }
        self.now
    }

    /// Head-of-line request of every flow with work that has arrived.
    fn active_heads(&self) -> Vec<usize> {
        self.flows
            .iter()
            .filter_map(|f| f.queue.front().copied())
            .filter(|&r| self.requests[r].arrival <= self.now)
            .collect()
    }

    /// Earliest arrival strictly in the future.
    fn next_arrival(&self) -> Option<f64> {
        self.flows
            .iter()
            .filter_map(|f| f.queue.front().copied())
            .map(|r| self.requests[r].arrival)
            .filter(|&a| a > self.now)
            .fold(None, |acc: Option<f64>, a| {
                Some(acc.map_or(a, |b| b.min(a)))
            })
    }

    /// Water-filling fair shares: every head starts from an even split of
    /// the wire; heads capped below their share keep the cap and the
    /// excess is redistributed among the rest.
    fn share_rates(&self, heads: &[usize]) -> Vec<f64> {
        let mut rates = vec![0.0; heads.len()];
        let mut open: Vec<usize> = (0..heads.len()).collect();
        let mut remaining_bw = self.bw;
        while !open.is_empty() {
            let fair = (remaining_bw / open.len() as f64).max(0.0);
            let capped: Vec<usize> = open
                .iter()
                .copied()
                .filter(|&i| self.requests[heads[i]].max_rate < fair)
                .collect();
            if capped.is_empty() {
                for i in open {
                    rates[i] = fair;
                }
                break;
            }
            for &i in &capped {
                let r = self.requests[heads[i]].max_rate;
                rates[i] = r;
                remaining_bw -= r;
            }
            open.retain(|i| !capped.contains(i));
        }
        rates
    }

    fn record_busy(&mut self, start: f64, end: f64) {
        push_busy(&mut self.busy, start, end);
    }

    fn complete(&mut self, req: usize, at: f64) {
        let flow = self.requests[req].flow;
        self.requests[req].remaining = 0.0;
        self.requests[req].completion = Some(at);
        let popped = self.flows[flow].queue.pop_front();
        debug_assert_eq!(popped, Some(req), "only the head of a flow completes");
        self.completions.push((RequestId(req), at));
    }

    fn advance_share(&mut self, t: f64) {
        loop {
            self.events_processed += 1;
            let heads = self.active_heads();
            if heads.is_empty() {
                // Idle: jump to the next arrival inside the window, else
                // to t.
                match self.next_arrival() {
                    Some(a) if a <= t => self.now = a,
                    _ => {
                        self.now = t;
                        return;
                    }
                }
                continue;
            }
            let rates = self.share_rates(&heads);
            // Candidate completion times under the current rate vector.
            let candidates: Vec<f64> = heads
                .iter()
                .zip(&rates)
                .map(|(&h, &r)| self.now + self.requests[h].remaining / r)
                .collect();
            let next_change = candidates
                .iter()
                .copied()
                .chain(self.next_arrival())
                .fold(f64::INFINITY, f64::min);
            let step_to = next_change.min(t);
            let dt = step_to - self.now;
            for ((&h, &rate), &candidate) in heads.iter().zip(&rates).zip(&candidates) {
                if candidate <= step_to {
                    let left = self.requests[h].remaining;
                    self.flows[self.requests[h].flow].delivered += left;
                    self.complete(h, candidate);
                } else if dt > 0.0 {
                    self.requests[h].remaining -= rate * dt;
                    self.flows[self.requests[h].flow].delivered += rate * dt;
                }
            }
            if dt > 0.0 {
                self.record_busy(self.now, step_to);
            }
            self.now = step_to;
            if self.now >= t {
                return;
            }
        }
    }

    fn advance_rr(&mut self, t: f64) {
        loop {
            if let Some(s) = self.serving {
                if s.end > t {
                    self.now = t;
                    return;
                }
                // The chunk drains.
                self.events_processed += 1;
                self.record_busy(s.start, s.end);
                self.now = s.end;
                let req = s.req;
                self.flows[self.requests[req].flow].delivered += s.bytes;
                self.requests[req].remaining -= s.bytes;
                if self.requests[req].remaining <= 1e-9 {
                    let dust = self.requests[req].remaining;
                    let flow = self.requests[req].flow;
                    self.flows[flow].delivered += dust;
                    self.complete(req, s.end);
                }
                self.serving = None;
                continue;
            }
            // Pick the next backlogged flow, cycling from the cursor.
            let n = self.flows.len();
            let pick = (0..n).map(|k| (self.rr_cursor + k) % n).find(|&f| {
                self.flows[f]
                    .queue
                    .front()
                    .is_some_and(|&r| self.requests[r].arrival <= self.now)
            });
            match pick {
                Some(f) => {
                    self.rr_cursor = (f + 1) % n;
                    let req = *self.flows[f].queue.front().expect("picked backlogged");
                    let bytes = self.quantum.min(self.requests[req].remaining);
                    let rate = self.bw.min(self.requests[req].max_rate);
                    self.serving = Some(Serving {
                        req,
                        start: self.now,
                        end: self.now + bytes / rate,
                        bytes,
                    });
                }
                None => match self.next_arrival() {
                    Some(a) if a <= t => {
                        self.events_processed += 1;
                        self.now = a;
                    }
                    _ => {
                        self.now = t;
                        return;
                    }
                },
            }
        }
    }
}

/// The timeline's fidelity level as a first-class value.
///
/// Experiments used to pick a fidelity by calling three different
/// constructors at three call sites; carrying the level as a value lets a
/// scenario descriptor name it declaratively and lets one call site build
/// the matching [`TransferSource`] (see [`FidelitySource`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// The paper's coarsest analytic model: one scalar ratio per layer
    /// (or uniformly across the network) through the effective-bandwidth
    /// throttling formula.
    UniformRatio,
    /// Per-layer analytic ratios from the calibrated density trajectories
    /// sampled at a training checkpoint.
    ProfiledDensity,
    /// Real per-window `(uncompressed, compressed)` line sizes through the
    /// incremental DMA pipeline.
    MeasuredStream,
}

impl Fidelity {
    /// Every fidelity level, coarsest first.
    pub const ALL: [Fidelity; 3] = [
        Fidelity::UniformRatio,
        Fidelity::ProfiledDensity,
        Fidelity::MeasuredStream,
    ];

    /// The stable label used in experiment tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::UniformRatio => "uniform-ratio",
            Fidelity::ProfiledDensity => "profiled-density",
            Fidelity::MeasuredStream => "measured-stream",
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform-ratio" | "uniform" => Ok(Fidelity::UniformRatio),
            "profiled-density" | "profiled" => Ok(Fidelity::ProfiledDensity),
            "measured-stream" | "measured" => Ok(Fidelity::MeasuredStream),
            other => Err(format!(
                "unknown fidelity {other:?} (expected uniform|profiled|measured)"
            )),
        }
    }
}

/// A [`TransferSource`] whose fidelity level was chosen at runtime from a
/// [`Fidelity`] value — the single dispatch point that replaces picking one
/// of the three concrete source types at every call site.
#[derive(Debug, Clone)]
pub enum FidelitySource {
    /// A [`UniformRatio`] source.
    Uniform(UniformRatio),
    /// A [`ProfiledDensity`] source.
    Profiled(ProfiledDensity),
    /// A [`MeasuredStream`] source.
    Measured(MeasuredStream),
}

impl FidelitySource {
    /// The fidelity level this source realizes.
    pub fn level(&self) -> Fidelity {
        match self {
            FidelitySource::Uniform(_) => Fidelity::UniformRatio,
            FidelitySource::Profiled(_) => Fidelity::ProfiledDensity,
            FidelitySource::Measured(_) => Fidelity::MeasuredStream,
        }
    }

    fn inner(&self) -> &dyn TransferSource {
        match self {
            FidelitySource::Uniform(s) => s,
            FidelitySource::Profiled(s) => s,
            FidelitySource::Measured(s) => s,
        }
    }
}

impl TransferSource for FidelitySource {
    fn fidelity(&self) -> &'static str {
        self.inner().fidelity()
    }

    fn input_payload(&self, spec: &NetworkSpec) -> Payload<'_> {
        self.inner().input_payload(spec)
    }

    fn layer_payload(&self, spec: &NetworkSpec, layer: usize) -> Payload<'_> {
        self.inner().layer_payload(spec, layer)
    }
}

impl From<UniformRatio> for FidelitySource {
    fn from(s: UniformRatio) -> Self {
        FidelitySource::Uniform(s)
    }
}

impl From<ProfiledDensity> for FidelitySource {
    fn from(s: ProfiledDensity) -> Self {
        FidelitySource::Profiled(s)
    }
}

impl From<MeasuredStream> for FidelitySource {
    fn from(s: MeasuredStream) -> Self {
        FidelitySource::Measured(s)
    }
}

/// What one transfer moves across the link.
#[derive(Debug, Clone, Copy)]
pub enum Payload<'a> {
    /// Nothing (the data is not offloaded under the active policy, or the
    /// oracle hides it).
    None,
    /// `bytes` of data compressing uniformly by `ratio` — the paper's
    /// analytic throttling model (Section VI).
    Analytic {
        /// Uncompressed bytes.
        bytes: u64,
        /// Compression ratio (1.0 = uncompressed vDNN).
        ratio: f64,
    },
    /// Measured per-window `(uncompressed, compressed)` line sizes of a
    /// real compressed stream.
    Lines(&'a [(u32, u32)]),
}

/// Supplies the transfer payloads of one simulated training step — the
/// fidelity knob of [`TimelineSim`].
pub trait TransferSource {
    /// Short label of the fidelity level (for experiment tables).
    fn fidelity(&self) -> &'static str;

    /// Payload of the network input offload (overlapped with forward
    /// stage 0).
    fn input_payload(&self, spec: &NetworkSpec) -> Payload<'_>;

    /// Payload of layer `layer`'s output activations.
    fn layer_payload(&self, spec: &NetworkSpec, layer: usize) -> Payload<'_>;
}

/// The analytic fidelity level: preserves [`StepSim`](crate::StepSim)'s
/// historic behavior exactly. Wraps a [`TransferPolicy`] (oracle, uniform
/// or per-layer scalar ratios, offload-all or conv-only).
#[derive(Debug, Clone)]
pub struct UniformRatio {
    policy: TransferPolicy,
}

impl UniformRatio {
    /// Wraps a transfer policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's ratio vector length does not match the layer
    /// count of `spec`.
    pub fn new(spec: &NetworkSpec, policy: TransferPolicy) -> Self {
        match &policy {
            TransferPolicy::OffloadAll(r) | TransferPolicy::OffloadConv(r) => {
                assert_eq!(
                    r.len(),
                    spec.layers().len(),
                    "one compression ratio per layer required"
                );
            }
            TransferPolicy::Oracle => {}
        }
        UniformRatio { policy }
    }

    /// Offload-all with one uniform ratio (1.0 reproduces baseline vDNN).
    pub fn uniform(spec: &NetworkSpec, ratio: f64) -> Self {
        UniformRatio::new(spec, TransferPolicy::uniform(spec, ratio))
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &TransferPolicy {
        &self.policy
    }
}

impl TransferSource for UniformRatio {
    fn fidelity(&self) -> &'static str {
        Fidelity::UniformRatio.label()
    }

    fn input_payload(&self, spec: &NetworkSpec) -> Payload<'_> {
        match &self.policy {
            TransferPolicy::Oracle => Payload::None,
            // The network input is dense (ratio 1) under both offload
            // policies.
            _ => Payload::Analytic {
                bytes: (spec.input().per_image() * spec.batch() * 4) as u64,
                ratio: 1.0,
            },
        }
    }

    fn layer_payload(&self, spec: &NetworkSpec, layer: usize) -> Payload<'_> {
        let (offload_all, ratios) = match &self.policy {
            TransferPolicy::Oracle => return Payload::None,
            TransferPolicy::OffloadAll(r) => (true, r),
            TransferPolicy::OffloadConv(r) => (false, r),
        };
        let l = &spec.layers()[layer];
        if !offload_all && !l.is_conv() {
            return Payload::None;
        }
        Payload::Analytic {
            bytes: l.activation_bytes(spec.batch()),
            ratio: ratios[layer],
        }
    }
}

/// The profiled fidelity level: per-layer analytic ratios derived from the
/// calibrated density trajectories of `cdma-models`, looked up through the
/// measured [`RatioTable`] — the methodology behind Fig. 11–13, now feeding
/// the event-driven timeline directly.
#[derive(Debug, Clone)]
pub struct ProfiledDensity {
    ratios: Vec<f64>,
}

impl ProfiledDensity {
    /// Ratios from explicit per-layer values.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the layer count of `spec`.
    pub fn from_ratios(spec: &NetworkSpec, ratios: Vec<f64>) -> Self {
        assert_eq!(
            ratios.len(),
            spec.layers().len(),
            "one compression ratio per layer required"
        );
        ProfiledDensity { ratios }
    }

    /// Ratios at training checkpoint `t` in `[0, 1]`: each layer's density
    /// trajectory is sampled at `t` and mapped through the ratio table.
    ///
    /// # Panics
    ///
    /// Panics if `profile` does not cover every layer of `spec`.
    pub fn at_checkpoint(
        spec: &NetworkSpec,
        profile: &NetworkProfile,
        t: f64,
        alg: Algorithm,
        layout: Layout,
        table: &RatioTable,
    ) -> Self {
        let ratios = spec
            .layers()
            .iter()
            .map(|l| {
                let d = profile
                    .trajectory(&l.name)
                    .unwrap_or_else(|| panic!("profile missing layer {}", l.name))
                    .density_at(t);
                table.ratio(alg, layout, d)
            })
            .collect();
        ProfiledDensity { ratios }
    }

    /// The per-layer ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }
}

impl TransferSource for ProfiledDensity {
    fn fidelity(&self) -> &'static str {
        Fidelity::ProfiledDensity.label()
    }

    fn input_payload(&self, spec: &NetworkSpec) -> Payload<'_> {
        Payload::Analytic {
            bytes: (spec.input().per_image() * spec.batch() * 4) as u64,
            ratio: 1.0,
        }
    }

    fn layer_payload(&self, spec: &NetworkSpec, layer: usize) -> Payload<'_> {
        Payload::Analytic {
            bytes: spec.layers()[layer].activation_bytes(spec.batch()),
            ratio: self.ratios[layer],
        }
    }
}

/// The measured fidelity level: real per-window `(uncompressed,
/// compressed)` line sizes, one table per layer output (plus one for the
/// network input), as produced by `CdmaEngine::memcpy_compressed` on actual
/// activation data. Offloads run line by line through the shared
/// [`DmaPipeline`]; prefetches use [`prefetch_seconds`] on the table's byte
/// totals.
#[derive(Debug, Clone, Default)]
pub struct MeasuredStream {
    input: Vec<(u32, u32)>,
    layers: Vec<Vec<(u32, u32)>>,
}

impl MeasuredStream {
    /// Builds a stream from the input's line table and one line table per
    /// layer (in layer order).
    pub fn new(input: Vec<(u32, u32)>, layers: Vec<Vec<(u32, u32)>>) -> Self {
        MeasuredStream { input, layers }
    }

    /// Line table of layer `i`'s output.
    pub fn layer_lines(&self, i: usize) -> &[(u32, u32)] {
        &self.layers[i]
    }

    /// Line table of the network input.
    pub fn input_lines(&self) -> &[(u32, u32)] {
        &self.input
    }

    /// Number of layer tables.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total uncompressed bytes across the input and every layer.
    pub fn total_uncompressed(&self) -> u64 {
        self.tables().map(|(u, _)| u).sum()
    }

    /// Total compressed bytes across the input and every layer.
    pub fn total_compressed(&self) -> u64 {
        self.tables().map(|(_, c)| c).sum()
    }

    fn tables(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        std::iter::once(&self.input)
            .chain(self.layers.iter())
            .map(|t| line_totals(t))
    }
}

/// Appends a busy interval to a time-ordered list, coalescing with the
/// previous one when they touch — the one implementation shared by the
/// timeline recorder, the link arbiter and the cluster's per-GPU books.
pub(crate) fn push_busy(v: &mut Vec<(f64, f64)>, start: f64, end: f64) {
    if end <= start {
        return;
    }
    if let Some(last) = v.last_mut() {
        debug_assert!(start >= last.1 - 1e-12, "resource double-booked");
        if start <= last.1 {
            last.1 = last.1.max(end);
            return;
        }
    }
    v.push((start, end));
}

///`(uncompressed, compressed)` byte totals of a line table.
fn line_totals(lines: &[(u32, u32)]) -> (u64, u64) {
    lines.iter().fold((0u64, 0u64), |(u, c), &(lu, lc)| {
        (u + lu as u64, c + lc as u64)
    })
}

impl TransferSource for MeasuredStream {
    fn fidelity(&self) -> &'static str {
        Fidelity::MeasuredStream.label()
    }

    fn input_payload(&self, _spec: &NetworkSpec) -> Payload<'_> {
        Payload::Lines(&self.input)
    }

    fn layer_payload(&self, spec: &NetworkSpec, layer: usize) -> Payload<'_> {
        assert_eq!(
            self.layers.len(),
            spec.layers().len(),
            "measured stream covers {} layers but the spec has {}",
            self.layers.len(),
            spec.layers().len()
        );
        Payload::Lines(&self.layers[layer])
    }
}

/// The three contended resources of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The GPU compute stream.
    Compute,
    /// The cDMA engine path at the memory controllers: `COMP_BW`-paced
    /// DRAM fetch + compression on offloads, decompression on prefetches.
    /// Busy only at the measured fidelity level; the analytic levels fold
    /// engine throttling into the effective link bandwidth.
    DmaRead,
    /// The PCIe link (offloads forward, prefetches backward).
    Link,
}

/// Training-step phase of a stage or event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
}

/// What happened at one timeline event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A layer's computation began.
    ComputeStart {
        /// Phase it belongs to.
        phase: Phase,
        /// Layer index.
        layer: usize,
    },
    /// A layer's computation finished.
    ComputeEnd {
        /// Phase it belongs to.
        phase: Phase,
        /// Layer index.
        layer: usize,
    },
    /// A GPU→CPU offload began (`None` = the network input).
    OffloadStart {
        /// Offloaded layer output (`None` = the network input).
        layer: Option<usize>,
    },
    /// A GPU→CPU offload's last byte crossed the link.
    OffloadEnd {
        /// Offloaded layer output (`None` = the network input).
        layer: Option<usize>,
    },
    /// A CPU→GPU prefetch began.
    PrefetchStart {
        /// Prefetched layer output.
        layer: usize,
    },
    /// A CPU→GPU prefetch finished decompressing.
    PrefetchEnd {
        /// Prefetched layer output.
        layer: usize,
    },
}

/// One timestamped entry of the event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute time in seconds from step start.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Per-stage summary: one forward or backward pipeline stage with its
/// overlapped transfer (the rows of a Fig. 2-style Gantt chart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Phase the stage belongs to.
    pub phase: Phase,
    /// The layer computed during the stage.
    pub layer: usize,
    /// Stage start time.
    pub start: f64,
    /// Seconds of layer computation.
    pub compute: f64,
    /// Seconds until the overlapped transfer finished, measured from stage
    /// start (0 = no transfer).
    pub transfer: f64,
    /// Stage end time (`start + max(compute, transfer)`).
    pub end: f64,
}

impl StageRecord {
    /// Seconds the GPU sat stalled on the transfer during this stage.
    pub fn stall(&self) -> f64 {
        (self.transfer - self.compute).max(0.0)
    }
}

/// The result of one simulated training step: the timing breakdown plus the
/// full chronological event log, per-stage records and per-resource busy
/// intervals.
#[derive(Debug, Clone)]
pub struct StepTimeline {
    /// Timing breakdown, identical in meaning to the legacy
    /// [`StepSim`](crate::StepSim) result.
    pub breakdown: StepBreakdown,
    fidelity: &'static str,
    events: Vec<Event>,
    stages: Vec<StageRecord>,
    busy: [Vec<(f64, f64)>; 3],
    events_processed: u64,
}

impl StepTimeline {
    /// Assembles a timeline from per-GPU records produced by the cluster
    /// simulator (`cdma_vdnn::cluster`).
    pub(crate) fn from_parts(
        breakdown: StepBreakdown,
        fidelity: &'static str,
        events: Vec<Event>,
        stages: Vec<StageRecord>,
        busy: [Vec<(f64, f64)>; 3],
        events_processed: u64,
    ) -> Self {
        StepTimeline {
            breakdown,
            fidelity,
            events,
            stages,
            busy,
            events_processed,
        }
    }

    /// Total step latency.
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// Fidelity label of the source that produced this timeline.
    pub fn fidelity(&self) -> &'static str {
        self.fidelity
    }

    /// The chronological event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Per-stage records in execution order (forward stages, then backward
    /// stages).
    pub fn stages(&self) -> &[StageRecord] {
        &self.stages
    }

    /// Busy intervals of one resource, in time order, coalesced where they
    /// touch — intervals never overlap (a resource does one thing at a
    /// time).
    pub fn busy(&self, r: Resource) -> &[(f64, f64)] {
        &self.busy[r as usize]
    }

    /// Total events processed through the queue, including line-granularity
    /// DMA pipeline events at the measured fidelity level (the
    /// "events/second" denominator of the timeline micro-benchmark).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

/// The shared event queue plus the record-keeping the simulation threads
/// through every stage. Events pop from the [`CalendarQueue`] in time
/// order, ties broken by insertion sequence, so the log is deterministic
/// (the exact order the retired `BinaryHeap` produced).
struct Recorder {
    queue: CalendarQueue<EventKind>,
    events: Vec<Event>,
    stages: Vec<StageRecord>,
    busy: [Vec<(f64, f64)>; 3],
    events_processed: u64,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            queue: CalendarQueue::new(),
            events: Vec::new(),
            stages: Vec::new(),
            busy: [Vec::new(), Vec::new(), Vec::new()],
            events_processed: 0,
        }
    }

    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.queue.push(time, kind);
    }

    /// Pops every queued event up to and including `t` into the log.
    fn drain_until(&mut self, t: f64) {
        while self.queue.min_time().is_some_and(|t0| t0 <= t) {
            let (time, kind) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            self.events.push(Event { time, kind });
        }
    }

    /// Records a busy interval, coalescing with the previous one when they
    /// touch (back-to-back DMA line drains collapse into one interval).
    fn busy(&mut self, r: Resource, start: f64, end: f64) {
        push_busy(&mut self.busy[r as usize], start, end);
    }
}

/// Event-driven simulator of one training step. See the [module
/// docs](self) for the fidelity levels and synchronization model.
#[derive(Debug, Clone, Copy)]
pub struct TimelineSim {
    cfg: SystemConfig,
    compute: ComputeModel,
}

impl TimelineSim {
    /// Creates a simulator.
    pub fn new(cfg: SystemConfig, compute: ComputeModel) -> Self {
        TimelineSim { cfg, compute }
    }

    /// The platform configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The compute model.
    pub fn compute_model(&self) -> ComputeModel {
        self.compute
    }

    /// Simulates one training step of `spec` with transfers supplied by
    /// `source`.
    pub fn simulate(&self, spec: &NetworkSpec, source: &dyn TransferSource) -> StepTimeline {
        let batch = spec.batch();
        let layers = spec.layers();
        let mut rec = Recorder::new();
        // One pipeline for the whole step: layer offloads contend for the
        // read path and the staging buffer across stage boundaries.
        let mut pipeline = DmaPipeline::new(self.cfg);

        let mut t = 0.0f64;
        let mut forward = 0.0f64;
        let mut forward_stall = 0.0f64;
        for (i, layer) in layers.iter().enumerate() {
            let compute = self.compute.forward_time(layer, batch);
            // Stage i overlaps layer i's compute with the offload of its
            // input (the previous layer's output; the dense network input
            // for stage 0).
            let (payload, src) = if i == 0 {
                (source.input_payload(spec), None)
            } else {
                (source.layer_payload(spec, i - 1), Some(i - 1))
            };
            pipeline.advance_to(t);
            let transfer = self.offload(&mut rec, &mut pipeline, t, src, payload);
            if compute > 0.0 {
                rec.schedule(
                    t,
                    EventKind::ComputeStart {
                        phase: Phase::Forward,
                        layer: i,
                    },
                );
                rec.schedule(
                    t + compute,
                    EventKind::ComputeEnd {
                        phase: Phase::Forward,
                        layer: i,
                    },
                );
                rec.busy(Resource::Compute, t, t + compute);
            }
            // The stage barrier: layer i+1 may start only when both the
            // computation and the offload have finished.
            let dur = compute.max(transfer);
            forward += dur;
            forward_stall += (transfer - compute).max(0.0);
            rec.stages.push(StageRecord {
                phase: Phase::Forward,
                layer: i,
                start: t,
                compute,
                transfer,
                end: t + dur,
            });
            t += dur;
            rec.drain_until(t);
        }
        // The last layer's output feeds the loss directly; no offload.

        let mut backward = 0.0f64;
        let mut backward_stall = 0.0f64;
        if !layers.is_empty() {
            // The deepest offloaded input must be prefetched before its
            // backward stage can run: a serial head with nothing to overlap.
            let head = layers.len().saturating_sub(2);
            let p = self.prefetch(&mut rec, t, head, source.layer_payload(spec, head));
            backward += p;
            backward_stall += p;
            t += p;
            rec.drain_until(t);
            for (i, layer) in layers.iter().enumerate().rev() {
                let compute = self.compute.backward_time(layer, batch);
                // While computing layer i's backward, prefetch the input of
                // layer i-1 (= the output of layer i-2).
                let transfer = if i >= 2 {
                    self.prefetch(&mut rec, t, i - 2, source.layer_payload(spec, i - 2))
                } else {
                    0.0
                };
                if compute > 0.0 {
                    rec.schedule(
                        t,
                        EventKind::ComputeStart {
                            phase: Phase::Backward,
                            layer: i,
                        },
                    );
                    rec.schedule(
                        t + compute,
                        EventKind::ComputeEnd {
                            phase: Phase::Backward,
                            layer: i,
                        },
                    );
                    rec.busy(Resource::Compute, t, t + compute);
                }
                let dur = compute.max(transfer);
                backward += dur;
                backward_stall += (transfer - compute).max(0.0);
                rec.stages.push(StageRecord {
                    phase: Phase::Backward,
                    layer: i,
                    start: t,
                    compute,
                    transfer,
                    end: t + dur,
                });
                t += dur;
                rec.drain_until(t);
            }
        }
        rec.drain_until(f64::INFINITY);

        StepTimeline {
            breakdown: StepBreakdown {
                forward,
                backward,
                forward_stall,
                backward_stall,
            },
            fidelity: source.fidelity(),
            events: rec.events,
            stages: rec.stages,
            busy: rec.busy,
            events_processed: rec.events_processed,
        }
    }

    /// Starts an offload at stage start `t`; returns the transfer's
    /// duration measured from `t`.
    fn offload(
        &self,
        rec: &mut Recorder,
        pipeline: &mut DmaPipeline,
        t: f64,
        layer: Option<usize>,
        payload: Payload<'_>,
    ) -> f64 {
        match payload {
            Payload::None => 0.0,
            Payload::Analytic { bytes, ratio } => {
                let dur = bytes as f64 / self.cfg.effective_offload_bw(ratio);
                if dur > 0.0 {
                    rec.schedule(t, EventKind::OffloadStart { layer });
                    rec.schedule(t + dur, EventKind::OffloadEnd { layer });
                    rec.busy(Resource::Link, t, t + dur);
                }
                dur
            }
            Payload::Lines(lines) => {
                if lines.is_empty() {
                    return 0.0;
                }
                rec.schedule(t, EventKind::OffloadStart { layer });
                let mut end = t;
                for &(u, c) in lines {
                    let s = pipeline.push_line(t, u, c);
                    rec.busy(Resource::DmaRead, s.issue, s.read_done);
                    rec.busy(Resource::Link, s.drain_start, s.drain_end);
                    end = end.max(s.drain_end);
                    // Issue, arrival and drain of the line each count as a
                    // processed pipeline event.
                    rec.events_processed += 3;
                }
                rec.schedule(end, EventKind::OffloadEnd { layer });
                end - t
            }
        }
    }

    /// Starts a prefetch at stage start `t`; returns its duration.
    fn prefetch(&self, rec: &mut Recorder, t: f64, layer: usize, payload: Payload<'_>) -> f64 {
        let dur = match payload {
            Payload::None => 0.0,
            // The analytic levels keep the paper's symmetric-bandwidth
            // model so legacy StepSim numbers are preserved exactly; the
            // whole duration books the link (the analytic model does not
            // separate wire time from decompression).
            Payload::Analytic { bytes, ratio } => {
                let dur = bytes as f64 / self.cfg.effective_offload_bw(ratio);
                rec.busy(Resource::Link, t, t + dur);
                dur
            }
            Payload::Lines(lines) => {
                let (u, c) = line_totals(lines);
                let dur = prefetch_seconds(&self.cfg, u, c);
                // The link is busy only while compressed bytes cross it;
                // the engines at the memory controllers hold the
                // decompression for the rest of the duration.
                rec.busy(Resource::Link, t, t + c as f64 / self.cfg.pcie_bw);
                rec.busy(Resource::DmaRead, t, t + dur);
                dur
            }
        };
        if dur > 0.0 {
            rec.schedule(t, EventKind::PrefetchStart { layer });
            rec.schedule(t + dur, EventKind::PrefetchEnd { layer });
        }
        dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CudnnVersion;
    use cdma_models::zoo;

    fn sim() -> TimelineSim {
        TimelineSim::new(
            SystemConfig::titan_x_pcie3(),
            ComputeModel::titan_x(CudnnVersion::V5),
        )
    }

    #[test]
    fn oracle_timeline_has_no_transfers() {
        let spec = zoo::alexnet();
        let tl = sim().simulate(&spec, &UniformRatio::new(&spec, TransferPolicy::Oracle));
        assert!(tl.busy(Resource::Link).is_empty());
        assert!(tl.busy(Resource::DmaRead).is_empty());
        assert_eq!(tl.breakdown.forward_stall, 0.0);
        assert_eq!(tl.breakdown.backward_stall, 0.0);
        // 2 stages per layer, 2 events per stage.
        assert_eq!(tl.events().len(), 4 * spec.layers().len());
    }

    #[test]
    fn events_are_chronological_and_stall_accounting_closes() {
        let spec = zoo::squeezenet();
        let tl = sim().simulate(&spec, &UniformRatio::uniform(&spec, 1.0));
        let mut prev = 0.0;
        for e in tl.events() {
            assert!(e.time >= prev, "event log out of order");
            prev = e.time;
        }
        let compute = ComputeModel::titan_x(CudnnVersion::V5).step_compute_time(&spec);
        let stalls = tl.breakdown.forward_stall + tl.breakdown.backward_stall;
        assert!(
            ((tl.total() - stalls) - compute).abs() / compute < 1e-9,
            "total - stalls should equal pure compute"
        );
    }

    #[test]
    fn stage_records_tile_the_step() {
        let spec = zoo::vgg();
        let tl = sim().simulate(&spec, &UniformRatio::uniform(&spec, 2.6));
        assert_eq!(tl.stages().len(), 2 * spec.layers().len());
        let mut t = 0.0;
        for (k, s) in tl.stages().iter().enumerate() {
            if k == spec.layers().len() {
                // The serial head prefetch sits between forward and
                // backward without a stage record.
                assert!(s.start >= t);
                t = s.start;
            }
            assert!((s.start - t).abs() < 1e-12, "stage {k} does not abut");
            assert!((s.end - (s.start + s.compute.max(s.transfer))).abs() < 1e-15);
            t = s.end;
        }
        assert!((t - tl.total()).abs() / tl.total() < 1e-9);
    }

    #[test]
    fn busy_intervals_never_overlap() {
        let spec = zoo::googlenet();
        for ratio in [1.0, 2.6, 13.8] {
            let tl = sim().simulate(&spec, &UniformRatio::uniform(&spec, ratio));
            for r in [Resource::Compute, Resource::DmaRead, Resource::Link] {
                let mut prev_end = f64::NEG_INFINITY;
                for &(s, e) in tl.busy(r) {
                    assert!(e > s, "empty interval");
                    assert!(s >= prev_end - 1e-12, "{r:?} double-booked");
                    prev_end = e;
                }
            }
        }
    }

    #[test]
    fn measured_lines_drive_the_dma_read_path() {
        let spec = zoo::alexnet();
        // Synthetic line tables: every window 4 KB, compressing 2x; the
        // input dense.
        let table_for = |bytes: u64, ratio: u32| -> Vec<(u32, u32)> {
            (0..bytes.div_ceil(4096))
                .map(|_| (4096u32, 4096 / ratio))
                .collect()
        };
        let input_bytes = (spec.input().per_image() * spec.batch() * 4) as u64;
        let stream = MeasuredStream::new(
            table_for(input_bytes, 1),
            spec.layers()
                .iter()
                .map(|l| table_for(l.activation_bytes(spec.batch()), 2))
                .collect(),
        );
        let tl = sim().simulate(&spec, &stream);
        assert_eq!(tl.fidelity(), "measured-stream");
        assert!(!tl.busy(Resource::DmaRead).is_empty());
        assert!(!tl.busy(Resource::Link).is_empty());
        // 2x compression beats uncompressed vDNN, loses to the oracle.
        let vdnn = sim().simulate(&spec, &UniformRatio::uniform(&spec, 1.0));
        let oracle = sim().simulate(&spec, &UniformRatio::new(&spec, TransferPolicy::Oracle));
        assert!(tl.total() < vdnn.total());
        assert!(tl.total() >= oracle.total() - 1e-12);
        // Line-level pipeline events dominate the processed-event count.
        assert!(tl.events_processed() > tl.events().len() as u64);
    }

    #[test]
    fn prefetch_seconds_is_link_bound_for_modest_compression() {
        let cfg = SystemConfig::titan_x_pcie3();
        let t = prefetch_seconds(&cfg, 4 << 20, 2 << 20);
        assert!((t - (2 << 20) as f64 / cfg.pcie_bw).abs() < 1e-12);
        // Extreme compression: decompression throughput dominates.
        let t2 = prefetch_seconds(&cfg, 4 << 20, 1024);
        let engines = ZvcEngine::new(cfg.engine_clock);
        let floor = (4 << 20) as f64 / engines.aggregate_throughput(cfg.mem_controllers);
        assert!((t2 - floor).abs() / floor < 1e-9);
    }

    #[test]
    fn profiled_density_matches_equivalent_uniform_ratios() {
        let spec = zoo::alexnet();
        let profile = cdma_models::profiles::density_profile(&spec);
        let table = RatioTable::build_fast(3);
        let profiled = ProfiledDensity::at_checkpoint(
            &spec,
            &profile,
            0.5,
            Algorithm::Zvc,
            Layout::Nchw,
            &table,
        );
        let via_policy = UniformRatio::new(
            &spec,
            TransferPolicy::OffloadAll(profiled.ratios().to_vec()),
        );
        let a = sim().simulate(&spec, &profiled);
        let b = sim().simulate(&spec, &via_policy);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn fidelity_values_round_trip_labels_and_sources() {
        for f in Fidelity::ALL {
            assert_eq!(f.label().parse::<Fidelity>().unwrap(), f);
        }
        assert_eq!(
            "uniform".parse::<Fidelity>().unwrap(),
            Fidelity::UniformRatio
        );
        assert!("bogus".parse::<Fidelity>().is_err());

        let spec = zoo::alexnet();
        let src: FidelitySource = UniformRatio::uniform(&spec, 2.0).into();
        assert_eq!(src.level(), Fidelity::UniformRatio);
        assert_eq!(src.fidelity(), Fidelity::UniformRatio.label());
        // Dispatching through the enum gives the same timeline as the
        // concrete source.
        let a = sim().simulate(&spec, &src);
        let b = sim().simulate(&spec, &UniformRatio::uniform(&spec, 2.0));
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    #[should_panic(expected = "one compression ratio per layer")]
    fn wrong_ratio_length_rejected() {
        let spec = zoo::alexnet();
        let _ = UniformRatio::new(&spec, TransferPolicy::OffloadAll(vec![1.0; 3]));
    }
}
