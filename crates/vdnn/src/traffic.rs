//! Offloaded-traffic accounting: the data behind Fig. 11 (compression
//! ratios) and Fig. 12 (offload size normalized to vDNN).

use cdma_compress::{Algorithm, CompressionStats};
use cdma_models::profiles::NetworkProfile;
use cdma_models::NetworkSpec;
use cdma_tensor::Layout;

use crate::RatioTable;

/// Training checkpoints over which traffic is averaged (the paper's
/// compression results integrate over the whole training run).
const CHECKPOINTS: usize = 9;

/// Per-layer traffic summary.
#[derive(Debug, Clone)]
pub struct LayerTraffic {
    /// Layer name.
    pub layer: String,
    /// Offloaded bytes per training step (uncompressed).
    pub bytes: u64,
    /// Training-averaged compression ratio of this layer's activations.
    pub mean_ratio: f64,
    /// Best (largest) ratio observed at any checkpoint — the per-layer
    /// peak that sizes cDMA's DRAM read-bandwidth demand (Fig. 11 "max").
    pub max_ratio: f64,
}

/// Network-level compression summary (one group of bars in Fig. 11).
#[derive(Debug, Clone)]
pub struct NetworkTraffic {
    /// Network name.
    pub network: String,
    /// Per-layer detail.
    pub layers: Vec<LayerTraffic>,
    /// Aggregate byte accounting (weighted by offloaded bytes).
    pub stats: CompressionStats,
}

impl NetworkTraffic {
    /// Byte-weighted average network compression ratio (Fig. 11 "avg").
    pub fn avg_ratio(&self) -> f64 {
        self.stats.ratio()
    }

    /// Maximum per-layer ratio (Fig. 11 "max"); 1.0 for an empty network.
    pub fn max_layer_ratio(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.max_ratio)
            .fold(1.0f64, f64::max)
    }

    /// Offload size normalized to vDNN (Fig. 12's y-axis).
    pub fn normalized_offload(&self) -> f64 {
        self.stats.normalized_size()
    }
}

/// Computes the offloaded-traffic summary of one network under a given
/// compression algorithm and activation layout.
///
/// Every layer output is offloaded once per step (the paper's
/// memory-scalability policy). Each layer's compression ratio is evaluated
/// at `CHECKPOINTS` training checkpoints from its density trajectory, via
/// the measured [`RatioTable`], and averaged; dense layers (no ReLU)
/// compress at the table's dense-end ratio.
pub fn network_traffic(
    spec: &NetworkSpec,
    profile: &NetworkProfile,
    alg: Algorithm,
    layout: Layout,
    table: &RatioTable,
) -> NetworkTraffic {
    let mut layers = Vec::with_capacity(spec.layers().len());
    let mut uncompressed = 0u64;
    let mut compressed = 0f64;
    for layer in spec.layers() {
        let bytes = layer.activation_bytes(spec.batch());
        let trajectory = profile
            .trajectory(&layer.name)
            .unwrap_or_else(|| panic!("profile missing layer {}", layer.name));
        let mut sum_inv_ratio = 0f64;
        let mut max_ratio = 0f64;
        for k in 0..CHECKPOINTS {
            let t = (k as f64 + 0.5) / CHECKPOINTS as f64;
            let d = trajectory.density_at(t);
            let r = table.ratio(alg, layout, d);
            sum_inv_ratio += 1.0 / r;
            max_ratio = max_ratio.max(r);
        }
        // Averaging compressed bytes (not ratios) keeps the aggregate
        // consistent with what actually crosses the link.
        let mean_inv = sum_inv_ratio / CHECKPOINTS as f64;
        let mean_ratio = 1.0 / mean_inv;
        uncompressed += bytes;
        compressed += bytes as f64 * mean_inv;
        layers.push(LayerTraffic {
            layer: layer.name.clone(),
            bytes,
            mean_ratio,
            max_ratio,
        });
    }
    NetworkTraffic {
        network: spec.name().to_owned(),
        layers,
        stats: CompressionStats::new(uncompressed, compressed.round() as u64),
    }
}

/// Per-layer training-averaged ratios in layer order — the input the
/// performance simulation needs.
pub fn per_layer_ratios(traffic: &NetworkTraffic) -> Vec<f64> {
    traffic.layers.iter().map(|l| l.mean_ratio).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_models::{profiles, zoo};

    fn traffic_for(alg: Algorithm) -> NetworkTraffic {
        let spec = zoo::alexnet();
        let profile = profiles::density_profile(&spec);
        let table = RatioTable::build_fast(3);
        network_traffic(&spec, &profile, alg, Layout::Nchw, &table)
    }

    #[test]
    fn alexnet_zvc_ratio_is_near_analytic_expectation() {
        // AlexNet's mean density ~0.506 => ZVC ratio ~32/(1+32*0.5) ≈ 1.9,
        // modulated by per-layer weighting.
        let t = traffic_for(Algorithm::Zvc);
        let r = t.avg_ratio();
        assert!((1.5..2.4).contains(&r), "AlexNet ZVC avg ratio {r}");
    }

    #[test]
    fn max_layer_ratio_exceeds_average() {
        let t = traffic_for(Algorithm::Zvc);
        assert!(t.max_layer_ratio() > t.avg_ratio());
        // fc layers at their density minimum should reach >5x.
        assert!(t.max_layer_ratio() > 5.0, "max {}", t.max_layer_ratio());
    }

    #[test]
    fn normalized_offload_is_inverse_of_ratio() {
        let t = traffic_for(Algorithm::Zvc);
        assert!((t.normalized_offload() - 1.0 / t.avg_ratio()).abs() < 1e-9);
    }

    #[test]
    fn per_layer_ratios_align_with_spec() {
        let spec = zoo::alexnet();
        let t = traffic_for(Algorithm::Zvc);
        let ratios = per_layer_ratios(&t);
        assert_eq!(ratios.len(), spec.layers().len());
        assert!(ratios.iter().all(|&r| r > 0.5));
    }

    #[test]
    fn dense_layers_do_not_compress() {
        let t = traffic_for(Algorithm::Zvc);
        let norm = t.layers.iter().find(|l| l.layer == "norm0").unwrap();
        // Fully dense data pays ZVC's mask overhead: ratio just below 1.
        assert!(
            (0.9..=1.05).contains(&norm.mean_ratio),
            "norm0 {}",
            norm.mean_ratio
        );
    }

    #[test]
    fn fc_layers_compress_best() {
        let t = traffic_for(Algorithm::Zvc);
        let fc1 = t.layers.iter().find(|l| l.layer == "fc1").unwrap();
        let conv1 = t.layers.iter().find(|l| l.layer == "conv1").unwrap();
        assert!(fc1.mean_ratio > conv1.mean_ratio);
    }

    #[test]
    fn deep_networks_compress_better_than_alexnet() {
        // SqueezeNet is sparser overall than AlexNet (Fig. 11/12): its
        // weighted ratio should be clearly higher.
        let table = RatioTable::build_fast(3);
        let alex = zoo::alexnet();
        let sq = zoo::squeezenet();
        let ra = network_traffic(
            &alex,
            &profiles::density_profile(&alex),
            Algorithm::Zvc,
            Layout::Nchw,
            &table,
        )
        .avg_ratio();
        let rs = network_traffic(
            &sq,
            &profiles::density_profile(&sq),
            Algorithm::Zvc,
            Layout::Nchw,
            &table,
        )
        .avg_ratio();
        assert!(rs > ra + 0.4, "SqueezeNet {rs} vs AlexNet {ra}");
    }
}
