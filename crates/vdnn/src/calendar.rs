//! # Indexed calendar event queue
//!
//! [`CalendarQueue`] is the priority queue behind the event-driven
//! simulators: a classic Brown-style *calendar queue* — an array of time
//! buckets of width `w`, where an event at time `t` lives in bucket
//! `⌊t/w⌋ mod n` — replacing the `BinaryHeap` the timeline and cluster
//! simulators used to carry. Each bucket is kept sorted by `(time, seq)`,
//! so the bucket minimum is always its front: near-future pops touch one
//! deque end instead of re-heapifying, and a batch of simultaneous events
//! (a synchronized 1000-GPU stage boundary queues ~1000 entries at one
//! instant) drains in O(1) per event instead of rescanning the bucket —
//! which is what keeps the 1000-GPU cluster steps at tens of millions of
//! events per second.
//!
//! ## Ordering contract
//!
//! Pop order is **exactly** the order the replaced heaps produced: the
//! minimum by `(time, seq)` where times compare with [`f64::total_cmp`]
//! and `seq` is the insertion sequence number the queue assigns
//! monotonically. Ties in time therefore pop in insertion order, and the
//! flat-fabric cluster results stay bit-identical to the pre-calendar
//! simulator (pinned by `tests/fabric_cross_validation.rs` and the seeded
//! oracle suite in `crates/vdnn/tests/calendar_queue_props.rs`).
//!
//! ## Robustness
//!
//! * **Far-future events** (times far beyond the bucket array's current
//!   "year") wrap modulo the array; because wrapped entries have strictly
//!   larger times they sort behind the current year's entries, so the
//!   scan decides each bucket by its front alone, and falls back to a
//!   direct minimum search over bucket fronts when a whole year is empty.
//! * **Past inserts** (an event scheduled before the last popped time)
//!   rewind the scan cursor, so the queue never skips them.
//! * **Non-finite times**: `±∞` saturate to the extreme virtual buckets
//!   and order correctly; `NaN` times are rejected (debug assertion) —
//!   the simulators never produce them.
//! * The bucket array doubles when occupancy exceeds two entries per
//!   bucket and halves when it drops below an eighth, re-deriving the
//!   bucket width from the queued span so the queue adapts to the
//!   simulation's event density.
//!
//! ```
//! use cdma_vdnn::calendar::CalendarQueue;
//!
//! let mut q = CalendarQueue::new();
//! q.push(2.0, "late");
//! q.push(1.0, "early");
//! q.push(1.0, "early-tie"); // same time: insertion order breaks the tie
//! assert_eq!(q.min_time(), Some(1.0));
//! assert_eq!(q.pop(), Some((1.0, "early")));
//! assert_eq!(q.pop(), Some((1.0, "early-tie")));
//! assert_eq!(q.pop(), Some((2.0, "late")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::VecDeque;

/// Smallest bucket count the array ever shrinks to (a power of two, so
/// the modulo is a mask).
const MIN_BUCKETS: usize = 16;

#[derive(Debug, Clone)]
struct Slot<T> {
    time: f64,
    seq: u64,
    value: T,
}

impl<T> Slot<T> {
    /// `(time, seq)` comparison against a key — the queue's total order.
    #[inline]
    fn cmp_key(&self, time: f64, seq: u64) -> Ordering {
        self.time.total_cmp(&time).then(self.seq.cmp(&seq))
    }
}

/// A bucketed calendar event queue with the heap's exact pop order. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Each bucket is sorted ascending by `(time, seq)`, so its minimum
    /// is the front.
    buckets: Vec<VecDeque<Slot<T>>>,
    /// Bucket width in seconds of simulated time.
    width: f64,
    len: usize,
    /// Next insertion sequence number (total across the queue's life).
    seq: u64,
    /// Virtual bucket number (`⌊t/w⌋`, unwrapped) the pop scan resumes
    /// from; never exceeds the minimum queued entry's virtual bucket.
    cursor: u64,
    /// Memoized bucket holding the current minimum (at its front);
    /// invalidated by every push and consumed by every pop.
    cached: Option<usize>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width: 1.0,
            len: 0,
            seq: 0,
            cursor: 0,
            cached: None,
        }
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries pushed over the queue's lifetime (the sequence counter —
    /// also the tie-break key of the next push).
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn mask(&self) -> u64 {
        self.buckets.len() as u64 - 1
    }

    /// Unwrapped bucket number of `time`. Saturating: `-∞` maps to 0,
    /// `+∞` to `u64::MAX`, so the mapping is weakly monotone in
    /// `total_cmp` order for every non-NaN time.
    #[inline]
    fn virtual_bucket(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Schedules `value` at `time`. Ties in time pop in push order.
    ///
    /// The common case — event times arriving in nondecreasing order per
    /// bucket, as simulators produce them — appends at the bucket's back
    /// in O(1); out-of-order times binary-search their slot.
    pub fn push(&mut self, time: f64, value: T) {
        debug_assert!(
            !time.is_nan(),
            "event times must be totally ordered (no NaN)"
        );
        let seq = self.seq;
        self.seq += 1;
        let vb = self.virtual_bucket(time);
        if self.len == 0 || vb < self.cursor {
            self.cursor = vb;
        }
        let b = (vb & self.mask()) as usize;
        let bucket = &mut self.buckets[b];
        let in_order = match bucket.back() {
            None => true,
            Some(s) => s.cmp_key(time, seq) == Ordering::Less,
        };
        if in_order {
            bucket.push_back(Slot { time, seq, value });
        } else {
            let i = bucket.partition_point(|s| s.cmp_key(time, seq) == Ordering::Less);
            bucket.insert(i, Slot { time, seq, value });
        }
        self.len += 1;
        self.cached = None;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Time of the earliest entry (the one [`CalendarQueue::pop`] would
    /// return), or `None` when empty. `&mut` because the located minimum
    /// is memoized for the following pop.
    pub fn min_time(&mut self) -> Option<f64> {
        let b = self.locate()?;
        let front = self.buckets[b]
            .front()
            .expect("located bucket is non-empty");
        Some(front.time)
    }

    /// Removes and returns the earliest entry: minimum time
    /// ([`f64::total_cmp`]), ties broken by insertion sequence.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let b = self.locate()?;
        let slot = self.buckets[b]
            .pop_front()
            .expect("located bucket is non-empty");
        self.len -= 1;
        self.cached = None;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 8 {
            let half = self.buckets.len() / 2;
            self.resize(half.max(MIN_BUCKETS));
        }
        Some((slot.time, slot.value))
    }

    /// Locates the bucket whose front is the minimum entry, memoizing it:
    /// scans forward from the cursor one bucket per virtual step. No
    /// queued entry's virtual bucket precedes the scan position (the
    /// cursor invariant), and buckets are sorted, so a bucket's front
    /// either belongs to the scanned virtual bucket — and is the year's
    /// minimum — or the whole bucket is wrapped future and is skipped.
    /// When an entire year of buckets is empty, falls back to a direct
    /// minimum search over bucket fronts.
    fn locate(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.cached.is_some() {
            return self.cached;
        }
        let nb = self.buckets.len() as u64;
        // One year: `nb` virtual steps from the cursor (saturating at
        // the +∞ bucket).
        for v in self.cursor..=self.cursor.saturating_add(nb - 1) {
            let b = (v & self.mask()) as usize;
            if let Some(front) = self.buckets[b].front() {
                if self.virtual_bucket(front.time) == v {
                    self.cursor = v;
                    self.cached = Some(b);
                    return self.cached;
                }
            }
        }
        // A whole year ahead of the cursor is empty: every remaining
        // entry is far in the future. Each bucket's minimum is its front,
        // so the global minimum is the least front; jump the cursor to
        // it.
        let mut best: Option<usize> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(s) = bucket.front() {
                let better = match best {
                    None => true,
                    Some(ob) => {
                        let o = self.buckets[ob].front().expect("candidate is non-empty");
                        s.cmp_key(o.time, o.seq) == Ordering::Less
                    }
                };
                if better {
                    best = Some(b);
                }
            }
        }
        let b = best.expect("non-empty queue has a minimum");
        let min_time = self.buckets[b]
            .front()
            .expect("candidate is non-empty")
            .time;
        self.cursor = self.virtual_bucket(min_time);
        self.cached = Some(b);
        self.cached
    }

    /// Rebuilds the bucket array at `new_len` buckets (a power of two),
    /// re-deriving the bucket width from the span of queued times so a
    /// bucket holds a few entries on average. Entries are redistributed
    /// in globally sorted order, which keeps every bucket sorted.
    fn resize(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mut slots: Vec<Slot<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &slots {
            if s.time.is_finite() {
                lo = lo.min(s.time);
                hi = hi.max(s.time);
            }
        }
        if hi > lo && slots.len() > 1 {
            // Three average gaps per bucket keeps per-pop scans short
            // without making a year too brief.
            let w = (hi - lo) / slots.len() as f64 * 3.0;
            if w.is_finite() && w > 0.0 {
                self.width = w;
            }
        }
        slots.sort_by(|a, b| a.cmp_key(b.time, b.seq));
        self.buckets = (0..new_len).map(|_| VecDeque::new()).collect();
        self.cursor = u64::MAX;
        for s in slots {
            let vb = self.virtual_bucket(s.time);
            self.cursor = self.cursor.min(vb);
            let b = (vb & self.mask()) as usize;
            self.buckets[b].push_back(s);
        }
        if self.len == 0 {
            self.cursor = 0;
        }
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(2.0, 'b');
        q.push(1.0, 'd');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['a', 'd', 'b', 'c']);
    }

    #[test]
    fn survives_growth_shrink_and_far_future() {
        let mut q = CalendarQueue::new();
        for i in 0..200u64 {
            q.push(i as f64 * 1e-5, i);
        }
        q.push(1e12, 999); // far future: wraps many years
        q.push(f64::INFINITY, 1000);
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.total_cmp(&prev) != Ordering::Less, "pop went backwards");
            prev = t;
            n += 1;
        }
        assert_eq!(n, 202);
        assert!(q.is_empty());
    }

    #[test]
    fn past_insert_rewinds_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(100.0, "far");
        assert_eq!(q.min_time(), Some(100.0));
        q.push(1.0, "near");
        assert_eq!(q.pop(), Some((1.0, "near")));
        assert_eq!(q.pop(), Some((100.0, "far")));
    }

    #[test]
    fn simultaneous_batch_drains_in_insertion_order() {
        // The 1000-GPU stage-boundary shape: one big batch at a single
        // instant, all landing in one bucket. Must drain front-to-back
        // in seq order without rescanning the bucket per pop.
        let mut q = CalendarQueue::new();
        for i in 0..1024u64 {
            q.push(0.5, i);
        }
        for i in 0..1024u64 {
            assert_eq!(q.pop(), Some((0.5, i)));
        }
        assert!(q.is_empty());
    }
}
