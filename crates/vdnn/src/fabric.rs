//! # Hierarchical datacenter fabrics (multi-level link arbitration)
//!
//! The single [`LinkArbiter`] of [`cluster`](crate::cluster) models 4–8
//! GPUs on one PCIe switch. Datacenter platforms stack that link: each
//! node's GPUs share a PCIe/NVLink tier, and the nodes' NICs share a
//! spine whose bandwidth is usually *oversubscribed* relative to the sum
//! of the node tiers. This module grows the cluster simulation onto that
//! shape:
//!
//! * [`FabricSpec`] / [`FabricShape`] — the two-tier topology (`n` nodes
//!   × `g` GPUs each, per-tier bandwidth and [`LinkPolicy`]);
//! * [`FluidFabric`] — the multi-level arbiter: every transfer traverses
//!   its node tier *and* the spine, and its instantaneous service rate is
//!   the max-min fair allocation across both tiers, so the bottleneck
//!   tier determines progress;
//! * [`FabricSim`] / [`Job`] — trace-driven tenant churn: jobs arrive on
//!   an open-loop schedule (same seeding discipline as
//!   `cdma_serve::loadgen::Schedule`), are admitted when GPUs are free,
//!   run multi-step with density evolving across
//!   [`FidelitySource`] checkpoints (the §IV
//!   trajectories), and depart mid-run — with per-step results folded
//!   into streaming [`RunStats`] so a long run stays in bounded memory;
//! * [`churn_trace`] — the seeded random job-mix generator behind the
//!   `tenancy=churn` scenario axis.
//!
//! ## Tier composition model
//!
//! Rates are *fluid*: at every schedule change the fabric solves a
//! max-min fair allocation by progressive filling. A
//! [`LinkPolicy::BandwidthShare`] tier is a shared pipe filled
//! water-filling style; a [`LinkPolicy::RoundRobin`] tier is modelled as
//! an equal-slice ceiling (`tier_bw / active_flows`, no redistribution of
//! unused slices) — the fluid limit of a quantum scheduler under
//! persistent backlog. Gradient all-reduce streams are inter-node
//! traffic: they traverse the spine only (`node = None`), while per-GPU
//! offload/prefetch flows traverse their node tier and then the spine.
//! Every tier keeps its own busy profile and wire-byte counter, so the
//! conservation invariant `spine bytes = Σ node bytes + all-reduce bytes`
//! is checkable after any run.
//!
//! The symmetric case has a closed form — each of `g·n` identical flows
//! gets `min(cap, node_bw/g, spine_bw/(g·n))` — which the independent
//! oracle in `tests/fabric_cross_validation.rs` pins within 1e-9.
//!
//! ```
//! use cdma_vdnn::fabric::{FabricSpec, FluidFabric};
//! use cdma_vdnn::timeline::LinkPolicy;
//!
//! // 2 nodes × 10 B/s, spine of 10 B/s shared by both.
//! let spec = FabricSpec::new(
//!     2, 2, 10.0, LinkPolicy::BandwidthShare, 10.0, LinkPolicy::BandwidthShare,
//! );
//! let mut fab = FluidFabric::new(spec);
//! let a = fab.flow("n0.gpu0", Some(0));
//! let b = fab.flow("n1.gpu0", Some(1));
//! let ra = fab.submit(a, 0.0, 40.0, f64::INFINITY);
//! let rb = fab.submit(b, 0.0, 40.0, f64::INFINITY);
//! fab.run_until_idle();
//! // Node tiers could carry 10 B/s each, but the 10 B/s spine is the
//! // bottleneck: each flow gets 5 B/s.
//! assert_eq!(fab.completion(ra), Some(8.0));
//! assert_eq!(fab.completion(rb), Some(8.0));
//! ```

use std::collections::VecDeque;

use cdma_gpusim::SystemConfig;
use cdma_models::NetworkSpec;

use crate::cluster::{ClusterSim, Tenant};
use crate::timeline::{push_busy, FidelitySource, FlowId, LinkArbiter, LinkPolicy, RequestId};

/// The fabric topology of a scenario, as a parseable axis value
/// (`fabric=flat`, `fabric=node8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricShape {
    /// Every GPU on one shared link — the legacy [`ClusterSim`] shape.
    Flat,
    /// Two tiers: nodes of `gpus_per_node` GPUs, each node's link feeding
    /// a shared spine.
    Hierarchical {
        /// GPUs per node (the node-tier fan-in).
        gpus_per_node: usize,
    },
}

impl FabricShape {
    /// The shapes every sweep iterates, smallest first.
    pub const ALL: [FabricShape; 2] = [
        FabricShape::Flat,
        FabricShape::Hierarchical { gpus_per_node: 8 },
    ];

    /// The stable label used in scenario keys (`flat`, `node8`).
    pub fn label(&self) -> String {
        match self {
            FabricShape::Flat => "flat".to_owned(),
            FabricShape::Hierarchical { gpus_per_node } => format!("node{gpus_per_node}"),
        }
    }

    /// Concretizes the shape for a platform and GPU count: `Flat` needs
    /// no fabric (the single [`LinkArbiter`] path), `Hierarchical` gets
    /// `⌈gpus / gpus_per_node⌉` nodes at the platform's PCIe bandwidth
    /// each, feeding a 2:1-oversubscribed spine
    /// (`node_bw · max(nodes/2, 1)`), both tiers under `policy`.
    pub fn spec_for(
        &self,
        cfg: &SystemConfig,
        gpus: usize,
        policy: LinkPolicy,
    ) -> Option<FabricSpec> {
        match *self {
            FabricShape::Flat => None,
            FabricShape::Hierarchical { gpus_per_node } => {
                assert!(gpus_per_node > 0, "need at least one GPU per node");
                let nodes = gpus.div_ceil(gpus_per_node).max(1);
                let node_bw = cfg.pcie_bw;
                let spine_bw = node_bw * (nodes as f64 / 2.0).max(1.0);
                Some(FabricSpec::new(
                    nodes,
                    gpus_per_node,
                    node_bw,
                    policy,
                    spine_bw,
                    policy,
                ))
            }
        }
    }
}

impl std::fmt::Display for FabricShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for FabricShape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "flat" {
            return Ok(FabricShape::Flat);
        }
        if let Some(g) = s.strip_prefix("node") {
            let gpus_per_node: usize = g
                .parse()
                .map_err(|_| format!("unknown fabric shape {s:?} (expected flat|node<g>)"))?;
            if gpus_per_node == 0 {
                return Err(format!(
                    "fabric shape {s:?} needs at least one GPU per node"
                ));
            }
            return Ok(FabricShape::Hierarchical { gpus_per_node });
        }
        Err(format!(
            "unknown fabric shape {s:?} (expected flat|node<g>)"
        ))
    }
}

/// The tenancy model of a scenario, as a parseable axis value
/// (`tenancy=static`, `tenancy=churn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tenancy {
    /// Every tenant present for the whole run (the legacy shape).
    Static,
    /// Trace-driven arrival/departure via [`churn_trace`] and
    /// [`FabricSim`].
    Churn,
}

impl Tenancy {
    /// Both tenancy models, static first.
    pub const ALL: [Tenancy; 2] = [Tenancy::Static, Tenancy::Churn];

    /// The stable label used in scenario keys.
    pub fn label(&self) -> &'static str {
        match self {
            Tenancy::Static => "static",
            Tenancy::Churn => "churn",
        }
    }
}

impl std::fmt::Display for Tenancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Tenancy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(Tenancy::Static),
            "churn" => Ok(Tenancy::Churn),
            other => Err(format!("unknown tenancy {other:?} (expected static|churn)")),
        }
    }
}

/// A concrete two-tier fabric: `nodes` node links of `node_bw`
/// bytes/second each (fan-in `gpus_per_node`), all feeding one spine of
/// `spine_bw` bytes/second, each tier under its own [`LinkPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricSpec {
    /// Node count (node-tier arbiter count).
    pub nodes: usize,
    /// GPUs per node; `nodes · gpus_per_node` bounds the cluster's GPUs.
    pub gpus_per_node: usize,
    /// Per-node link bandwidth, wire bytes/second.
    pub node_bw: f64,
    /// Node-tier arbitration.
    pub node_policy: LinkPolicy,
    /// Spine bandwidth, wire bytes/second.
    pub spine_bw: f64,
    /// Spine arbitration.
    pub spine_policy: LinkPolicy,
}

impl FabricSpec {
    /// A validated fabric.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `gpus_per_node` is zero, or a bandwidth is
    /// not positive and finite.
    pub fn new(
        nodes: usize,
        gpus_per_node: usize,
        node_bw: f64,
        node_policy: LinkPolicy,
        spine_bw: f64,
        spine_policy: LinkPolicy,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(gpus_per_node > 0, "need at least one GPU per node");
        assert!(
            node_bw > 0.0 && node_bw.is_finite(),
            "node bandwidth must be positive"
        );
        assert!(
            spine_bw > 0.0 && spine_bw.is_finite(),
            "spine bandwidth must be positive"
        );
        FabricSpec {
            nodes,
            gpus_per_node,
            node_bw,
            node_policy,
            spine_bw,
            spine_policy,
        }
    }

    /// GPU slots in the fabric (`nodes · gpus_per_node`).
    pub fn capacity(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Which node a tenant-major global GPU index lands on.
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }
}

#[derive(Debug)]
struct FFlow {
    label: String,
    /// `Some(k)` — traverses node tier `k` then the spine; `None` —
    /// inter-node traffic on the spine only (gradient all-reduce).
    node: Option<usize>,
    /// FIFO of not-yet-finished request indices (head is in service).
    queue: VecDeque<usize>,
    offered: f64,
    delivered: f64,
}

#[derive(Debug)]
struct FRequest {
    flow: usize,
    arrival: f64,
    max_rate: f64,
    remaining: f64,
    completion: Option<f64>,
}

/// The multi-level fluid arbiter: [`LinkArbiter`]'s submit/advance API,
/// but every transfer traverses a *path* of tiers and its service rate is
/// the max-min fair allocation across all of them. See the
/// [module docs](self) for the tier composition model.
#[derive(Debug)]
pub struct FluidFabric {
    spec: FabricSpec,
    now: f64,
    flows: Vec<FFlow>,
    requests: Vec<FRequest>,
    /// Per-node-tier busy intervals, coalesced.
    node_busy: Vec<Vec<(f64, f64)>>,
    spine_busy: Vec<(f64, f64)>,
    /// Wire bytes each node tier has carried.
    node_bytes: Vec<f64>,
    /// Wire bytes the spine has carried (every flow crosses it).
    spine_bytes: f64,
    completions: Vec<(RequestId, f64)>,
    events_processed: u64,
}

impl FluidFabric {
    /// An idle fabric of `spec`'s shape.
    pub fn new(spec: FabricSpec) -> Self {
        FluidFabric {
            spec,
            now: 0.0,
            flows: Vec::new(),
            requests: Vec::new(),
            node_busy: (0..spec.nodes).map(|_| Vec::new()).collect(),
            spine_busy: Vec::new(),
            node_bytes: vec![0.0; spec.nodes],
            spine_bytes: 0.0,
            completions: Vec::new(),
            events_processed: 0,
        }
    }

    /// The fabric's topology.
    pub fn spec(&self) -> FabricSpec {
        self.spec
    }

    /// Registers a flow. `node = Some(k)` routes it through node tier `k`
    /// and the spine; `None` is spine-only inter-node traffic.
    ///
    /// # Panics
    ///
    /// Panics if `node` names a tier outside the fabric.
    pub fn flow(&mut self, label: &str, node: Option<usize>) -> FlowId {
        if let Some(k) = node {
            assert!(k < self.spec.nodes, "node {k} outside the fabric");
        }
        self.flows.push(FFlow {
            label: label.to_owned(),
            node,
            queue: VecDeque::new(),
            offered: 0.0,
            delivered: 0.0,
        });
        FlowId::from_index(self.flows.len() - 1)
    }

    /// Submits a transfer of `wire_bytes` on `flow` arriving at `at`,
    /// rate-capped at `max_rate` (same contract as
    /// [`LinkArbiter::submit`]).
    ///
    /// # Panics
    ///
    /// Panics if `wire_bytes` or `max_rate` is not positive, or `at`
    /// precedes the clock or the flow's previous submission.
    pub fn submit(&mut self, flow: FlowId, at: f64, wire_bytes: f64, max_rate: f64) -> RequestId {
        assert!(wire_bytes > 0.0, "transfer must move at least one byte");
        assert!(max_rate > 0.0, "rate cap must be positive");
        assert!(
            at >= self.now,
            "submission at {at} precedes the fabric clock {}",
            self.now
        );
        let f = &mut self.flows[flow.index()];
        if let Some(&prev) = f.queue.back() {
            assert!(
                at >= self.requests[prev].arrival,
                "per-flow submissions must be in arrival order"
            );
        }
        let id = self.requests.len();
        self.requests.push(FRequest {
            flow: flow.index(),
            arrival: at,
            max_rate,
            remaining: wire_bytes,
            completion: None,
        });
        let f = &mut self.flows[flow.index()];
        f.queue.push_back(id);
        f.offered += wire_bytes;
        RequestId::from_index(id)
    }

    /// The fabric's clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The label a flow was registered with.
    pub fn flow_label(&self, flow: FlowId) -> &str {
        &self.flows[flow.index()].label
    }

    /// Wire bytes submitted on `flow` so far.
    pub fn offered(&self, flow: FlowId) -> f64 {
        self.flows[flow.index()].offered
    }

    /// Wire bytes delivered for `flow` so far.
    pub fn delivered(&self, flow: FlowId) -> f64 {
        self.flows[flow.index()].delivered
    }

    /// Completion time of a request, once it has fully drained.
    pub fn completion(&self, req: RequestId) -> Option<f64> {
        self.requests[req.index()].completion
    }

    /// Spine busy intervals, time-ordered and coalesced.
    pub fn spine_busy(&self) -> &[(f64, f64)] {
        &self.spine_busy
    }

    /// Node tier `k`'s busy intervals.
    pub fn node_busy(&self, k: usize) -> &[(f64, f64)] {
        &self.node_busy[k]
    }

    /// Per-node busy intervals, all tiers.
    pub fn node_busy_all(&self) -> &[Vec<(f64, f64)>] {
        &self.node_busy
    }

    /// Wire bytes the spine has carried.
    pub fn spine_bytes(&self) -> f64 {
        self.spine_bytes
    }

    /// Wire bytes node tier `k` has carried.
    pub fn node_bytes(&self, k: usize) -> f64 {
        self.node_bytes[k]
    }

    /// Internal events processed: one per active flow per fluid
    /// rate-change interval, plus idle-period arrival jumps.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Completions produced since the last call, in completion order.
    pub fn take_completions(&mut self) -> Vec<(RequestId, f64)> {
        std::mem::take(&mut self.completions)
    }

    /// Whether any submitted transfer still has bytes to move.
    pub fn has_backlog(&self) -> bool {
        self.flows.iter().any(|f| !f.queue.is_empty())
    }

    /// Head-of-line request of every flow with work that has arrived.
    fn active_heads(&self) -> Vec<usize> {
        self.flows
            .iter()
            .filter_map(|f| f.queue.front().copied())
            .filter(|&r| self.requests[r].arrival <= self.now)
            .collect()
    }

    /// Earliest arrival strictly in the future.
    fn next_arrival(&self) -> Option<f64> {
        self.flows
            .iter()
            .filter_map(|f| f.queue.front().copied())
            .map(|r| self.requests[r].arrival)
            .filter(|&a| a > self.now)
            .fold(None, |acc: Option<f64>, a| {
                Some(acc.map_or(a, |b| b.min(a)))
            })
    }

    /// Max-min fair rates across both tiers by progressive filling.
    ///
    /// Per-flow ceilings start at the request's rate cap; a round-robin
    /// tier adds its equal-slice ceiling (`tier_bw / active_in_tier`).
    /// Then all open flows' rates rise together until one hits its
    /// ceiling or a bandwidth-share tier saturates, whose member flows
    /// freeze; repeat until every flow is frozen. The bottleneck tier of
    /// each flow's path therefore determines its rate.
    fn rates(&self, heads: &[usize]) -> Vec<f64> {
        let n = heads.len();
        let mut node_count = vec![0usize; self.spec.nodes];
        for &h in heads {
            if let Some(k) = self.flows[self.requests[h].flow].node {
                node_count[k] += 1;
            }
        }
        let node_of = |h: usize| self.flows[self.requests[h].flow].node;
        let mut ceil: Vec<f64> = heads
            .iter()
            .map(|&h| {
                let mut c = self.requests[h].max_rate;
                if let Some(k) = node_of(h) {
                    if self.spec.node_policy == LinkPolicy::RoundRobin {
                        c = c.min(self.spec.node_bw / node_count[k] as f64);
                    }
                }
                if self.spec.spine_policy == LinkPolicy::RoundRobin {
                    c = c.min(self.spec.spine_bw / n as f64);
                }
                c
            })
            .collect();
        let node_bs = self.spec.node_policy == LinkPolicy::BandwidthShare;
        let spine_bs = self.spec.spine_policy == LinkPolicy::BandwidthShare;
        // A bandwidth-share node tier also caps a lone flow: no amount of
        // filling can exceed the tier, so fold it into the ceiling (this
        // keeps the symmetric case exact instead of tolerance-frozen).
        if node_bs {
            for (i, &h) in heads.iter().enumerate() {
                if node_of(h).is_some() {
                    ceil[i] = ceil[i].min(self.spec.node_bw);
                }
            }
        }
        if spine_bs {
            for c in &mut ceil {
                *c = (*c).min(self.spec.spine_bw);
            }
        }
        let mut rates = vec![0.0; n];
        let mut open = vec![true; n];
        let mut open_count = n;
        // Each round freezes at least one flow or one tier, so the loop
        // is bounded by flows + tiers.
        for _ in 0..(n + self.spec.nodes + 2) {
            if open_count == 0 {
                break;
            }
            let mut delta = f64::INFINITY;
            for i in 0..n {
                if open[i] {
                    delta = delta.min(ceil[i] - rates[i]);
                }
            }
            if node_bs {
                let mut used = vec![0.0f64; self.spec.nodes];
                let mut open_k = vec![0usize; self.spec.nodes];
                for (i, &h) in heads.iter().enumerate() {
                    if let Some(k) = node_of(h) {
                        used[k] += rates[i];
                        if open[i] {
                            open_k[k] += 1;
                        }
                    }
                }
                for k in 0..self.spec.nodes {
                    if open_k[k] > 0 {
                        delta = delta.min((self.spec.node_bw - used[k]) / open_k[k] as f64);
                    }
                }
            }
            if spine_bs {
                let used: f64 = rates.iter().sum();
                delta = delta.min((self.spec.spine_bw - used) / open_count as f64);
            }
            let delta = delta.max(0.0);
            for i in 0..n {
                if open[i] {
                    rates[i] += delta;
                }
            }
            // Freeze flows at their ceilings (snapping exactly, so capped
            // flows get their cap bit-for-bit, as LinkArbiter does).
            for i in 0..n {
                if open[i] && ceil[i] - rates[i] <= ceil[i] * 1e-12 {
                    rates[i] = ceil[i];
                    open[i] = false;
                    open_count -= 1;
                }
            }
            // Freeze members of saturated bandwidth-share tiers at their
            // current (fair) rates.
            if node_bs {
                let mut used = vec![0.0f64; self.spec.nodes];
                for (i, &h) in heads.iter().enumerate() {
                    if let Some(k) = node_of(h) {
                        used[k] += rates[i];
                    }
                }
                for (i, &h) in heads.iter().enumerate() {
                    if let Some(k) = node_of(h) {
                        if open[i] && self.spec.node_bw - used[k] <= self.spec.node_bw * 1e-12 {
                            open[i] = false;
                            open_count -= 1;
                        }
                    }
                }
            }
            if spine_bs {
                let used: f64 = rates.iter().sum();
                if self.spec.spine_bw - used <= self.spec.spine_bw * 1e-12 {
                    for o in &mut open {
                        if *o {
                            *o = false;
                            open_count -= 1;
                        }
                    }
                }
            }
        }
        rates
    }

    /// The earliest future time at which the schedule changes on its own,
    /// or `None` when fully drained (same contract as
    /// [`LinkArbiter::next_event`]).
    pub fn next_event(&self) -> Option<f64> {
        let heads = self.active_heads();
        if !heads.is_empty() {
            let rates = self.rates(&heads);
            let dt = heads
                .iter()
                .zip(&rates)
                .map(|(&h, &r)| self.requests[h].remaining / r)
                .fold(f64::INFINITY, f64::min);
            let completion = self.now + dt;
            return Some(match self.next_arrival() {
                Some(a) => completion.min(a),
                None => completion,
            });
        }
        self.next_arrival()
    }

    fn complete(&mut self, req: usize, at: f64) {
        let flow = self.requests[req].flow;
        self.requests[req].remaining = 0.0;
        self.requests[req].completion = Some(at);
        let popped = self.flows[flow].queue.pop_front();
        debug_assert_eq!(popped, Some(req), "only the head of a flow completes");
        self.completions.push((RequestId::from_index(req), at));
    }

    /// Advances the fluid schedule to `t` (monotone).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the fabric clock.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.now, "cannot advance backwards");
        loop {
            let heads = self.active_heads();
            if heads.is_empty() {
                match self.next_arrival() {
                    Some(a) if a <= t => {
                        self.events_processed += 1;
                        self.now = a;
                    }
                    _ => {
                        self.now = t;
                        return;
                    }
                }
                continue;
            }
            self.events_processed += heads.len() as u64;
            let rates = self.rates(&heads);
            let candidates: Vec<f64> = heads
                .iter()
                .zip(&rates)
                .map(|(&h, &r)| self.now + self.requests[h].remaining / r)
                .collect();
            let next_change = candidates
                .iter()
                .copied()
                .chain(self.next_arrival())
                .fold(f64::INFINITY, f64::min);
            let step_to = next_change.min(t);
            let dt = step_to - self.now;
            let mut node_active = vec![false; self.spec.nodes];
            for ((&h, &rate), &candidate) in heads.iter().zip(&rates).zip(&candidates) {
                let node = self.flows[self.requests[h].flow].node;
                let moved = if candidate <= step_to {
                    let left = self.requests[h].remaining;
                    self.flows[self.requests[h].flow].delivered += left;
                    self.complete(h, candidate);
                    left
                } else if dt > 0.0 {
                    let m = rate * dt;
                    self.requests[h].remaining -= m;
                    self.flows[self.requests[h].flow].delivered += m;
                    m
                } else {
                    0.0
                };
                if moved > 0.0 {
                    self.spine_bytes += moved;
                    if let Some(k) = node {
                        self.node_bytes[k] += moved;
                        node_active[k] = true;
                    }
                }
            }
            if dt > 0.0 {
                push_busy(&mut self.spine_busy, self.now, step_to);
                for (k, active) in node_active.iter().enumerate() {
                    if *active {
                        push_busy(&mut self.node_busy[k], self.now, step_to);
                    }
                }
            }
            self.now = step_to;
            if self.now >= t {
                return;
            }
        }
    }

    /// Runs the schedule until every submitted transfer has drained;
    /// returns the drain time.
    pub fn run_until_idle(&mut self) -> f64 {
        while let Some(t) = self.next_event() {
            self.advance_to(t.max(self.now));
            if !self.has_backlog() {
                break;
            }
        }
        self.now
    }
}

/// The cluster's link backend: the legacy single [`LinkArbiter`] (flat
/// fabric — byte-for-byte the pre-fabric code path) or a hierarchical
/// [`FluidFabric`].
#[derive(Debug)]
pub(crate) enum Links {
    /// One shared link, no node tiers.
    Flat(LinkArbiter),
    /// Two-tier hierarchical fabric.
    Fabric(Box<FluidFabric>),
}

impl Links {
    pub(crate) fn flow(&mut self, label: &str, node: Option<usize>) -> FlowId {
        match self {
            Links::Flat(a) => a.flow(label),
            Links::Fabric(f) => f.flow(label, node),
        }
    }

    pub(crate) fn submit(
        &mut self,
        flow: FlowId,
        at: f64,
        wire_bytes: f64,
        max_rate: f64,
    ) -> RequestId {
        match self {
            Links::Flat(a) => a.submit(flow, at, wire_bytes, max_rate),
            Links::Fabric(f) => f.submit(flow, at, wire_bytes, max_rate),
        }
    }

    pub(crate) fn now(&self) -> f64 {
        match self {
            Links::Flat(a) => a.now(),
            Links::Fabric(f) => f.now(),
        }
    }

    pub(crate) fn next_event(&self) -> Option<f64> {
        match self {
            Links::Flat(a) => a.next_event(),
            Links::Fabric(f) => f.next_event(),
        }
    }

    pub(crate) fn advance_to(&mut self, t: f64) {
        match self {
            Links::Flat(a) => a.advance_to(t),
            Links::Fabric(f) => f.advance_to(t),
        }
    }

    pub(crate) fn take_completions(&mut self) -> Vec<(RequestId, f64)> {
        match self {
            Links::Flat(a) => a.take_completions(),
            Links::Fabric(f) => f.take_completions(),
        }
    }

    pub(crate) fn events_processed(&self) -> u64 {
        match self {
            Links::Flat(a) => a.events_processed(),
            Links::Fabric(f) => f.events_processed(),
        }
    }

    /// The shared tier's busy intervals: the link (flat) or the spine.
    pub(crate) fn link_busy(&self) -> &[(f64, f64)] {
        match self {
            Links::Flat(a) => a.busy(),
            Links::Fabric(f) => f.spine_busy(),
        }
    }

    /// Per-node-tier busy intervals (empty on a flat fabric).
    pub(crate) fn node_busy(&self) -> &[Vec<(f64, f64)>] {
        match self {
            Links::Flat(_) => &[],
            Links::Fabric(f) => f.node_busy_all(),
        }
    }

    /// `(shared-tier bytes, per-node bytes)` carried so far.
    pub(crate) fn wire_totals(&self) -> (f64, Vec<f64>) {
        match self {
            Links::Flat(a) => (a.delivered_total(), Vec::new()),
            Links::Fabric(f) => (f.spine_bytes(), f.node_bytes.clone()),
        }
    }
}

/// One job in a churn trace: a network trained for `steps` synchronized
/// steps on `gpus` GPUs, arriving at `arrival` and (optionally) departing
/// early, with activation density evolving across `checkpoints` (the §IV
/// trajectories — checkpoint `⌊done · k / steps⌋` feeds step `done`).
#[derive(Clone, Copy)]
pub struct Job<'a> {
    /// The trained network.
    pub spec: &'a NetworkSpec,
    /// Data-parallel width.
    pub gpus: usize,
    /// Submission time, seconds.
    pub arrival: f64,
    /// Training steps requested.
    pub steps: usize,
    /// If set, the job leaves at the first step boundary at or after
    /// this time, cancelling its unfinished steps.
    pub departure: Option<f64>,
    /// Density-evolution checkpoints, earliest epoch first (at least
    /// one).
    pub checkpoints: &'a [FidelitySource],
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("spec", &self.spec.name())
            .field("gpus", &self.gpus)
            .field("arrival", &self.arrival)
            .field("steps", &self.steps)
            .field("departure", &self.departure)
            .field("checkpoints", &self.checkpoints.len())
            .finish()
    }
}

/// Streaming aggregate over every per-GPU step a churn run simulates —
/// the bounded-memory replacement for retaining 1000 `StepTimeline`s.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Per-GPU steps folded in.
    pub gpu_steps: u64,
    /// Running mean per-GPU step time, seconds.
    pub mean_step: f64,
    /// Slowest per-GPU step, seconds.
    pub max_step: f64,
    /// Total PCIe stall seconds across every folded step.
    pub total_stall: f64,
}

impl RunStats {
    /// Folds one per-GPU step in (Welford-style incremental mean, so the
    /// aggregate never retains the samples).
    pub fn fold(&mut self, total: f64, stall: f64) {
        self.gpu_steps += 1;
        self.mean_step += (total - self.mean_step) / self.gpu_steps as f64;
        self.max_step = self.max_step.max(total);
        self.total_stall += stall;
    }
}

/// One synchronized cluster step of a churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStat {
    /// Absolute start time, seconds.
    pub start: f64,
    /// Step duration (the `ClusterTimeline` makespan).
    pub makespan: f64,
    /// Tenants resident during the step.
    pub tenants: usize,
    /// GPUs busy during the step.
    pub gpus: usize,
    /// Shared-tier (spine) utilisation during the step.
    pub link_utilisation: f64,
    /// Events the step's simulation processed.
    pub events: u64,
}

/// Per-job accounting of a churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's network.
    pub network: String,
    /// Data-parallel width.
    pub gpus: usize,
    /// Submission time.
    pub arrival: f64,
    /// When the job was admitted (`None` — never fit before the run
    /// drained, or it departed while still queued).
    pub admitted: Option<f64>,
    /// Steps the job asked for.
    pub steps_requested: usize,
    /// Steps that ran to completion.
    pub steps_completed: usize,
    /// Steps cancelled by early departure.
    pub steps_cancelled: usize,
    /// When the job's last step finished (`None` if it departed or never
    /// ran).
    pub finished: Option<f64>,
    /// When the job departed early (`None` if it ran to completion).
    pub departed: Option<f64>,
}

/// The outcome of one trace-driven churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRun {
    /// Every synchronized cluster step, in time order.
    pub steps: Vec<StepStat>,
    /// Per-job outcomes, in trace order.
    pub jobs: Vec<JobOutcome>,
    /// Shared-tier (spine) busy intervals across the whole run, absolute
    /// time, coalesced.
    pub spine_busy: Vec<(f64, f64)>,
    /// Streaming per-GPU-step aggregates.
    pub stats: RunStats,
    /// When the last admitted work drained.
    pub makespan: f64,
    /// Total events across every step simulation.
    pub events_processed: u64,
}

impl FabricRun {
    /// Fraction of the makespan the shared tier spent busy.
    pub fn spine_utilisation(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.spine_busy.iter().map(|&(s, e)| e - s).sum();
        busy / self.makespan
    }
}

/// Trace-driven tenant churn over a [`ClusterSim`]: admits [`Job`]s as
/// GPUs free up, simulates synchronized cluster steps of whoever is
/// resident, advances each job's density checkpoint per completed step,
/// and retires or cancels jobs at step boundaries. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct FabricSim {
    cluster: ClusterSim,
}

impl FabricSim {
    /// A churn driver over `cluster` (whose fabric, if any, bounds
    /// admission at [`FabricSpec::capacity`] GPUs; a flat cluster admits
    /// everyone immediately).
    pub fn new(cluster: ClusterSim) -> Self {
        FabricSim { cluster }
    }

    /// The underlying cluster simulator.
    pub fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }

    /// Runs `jobs` to completion (or departure).
    ///
    /// Admission is in arrival order with skip-ahead: a queued job too
    /// wide for the currently free GPUs does not block a later, narrower
    /// one. Steps are synchronized cluster-wide — the resident set is
    /// fixed for a step and re-evaluated at every step boundary, which is
    /// also when departures take effect ("cleanly cancelled": a departing
    /// job never abandons a step midway).
    ///
    /// # Panics
    ///
    /// Panics if a job has zero GPUs or steps, no checkpoints, or is
    /// wider than the fabric's capacity.
    pub fn run(&self, jobs: &[Job<'_>]) -> FabricRun {
        let capacity = self.cluster.fabric().map_or(usize::MAX, |f| f.capacity());
        for job in jobs {
            assert!(job.gpus > 0, "{}: need at least one GPU", job.spec.name());
            assert!(job.steps > 0, "{}: need at least one step", job.spec.name());
            assert!(
                !job.checkpoints.is_empty(),
                "{}: need at least one density checkpoint",
                job.spec.name()
            );
            assert!(
                job.gpus <= capacity,
                "{}: {} GPUs exceed the fabric capacity {capacity}",
                job.spec.name(),
                job.gpus
            );
        }
        let mut outcomes: Vec<JobOutcome> = jobs
            .iter()
            .map(|j| JobOutcome {
                network: j.spec.name().to_owned(),
                gpus: j.gpus,
                arrival: j.arrival,
                admitted: None,
                steps_requested: j.steps,
                steps_completed: 0,
                steps_cancelled: 0,
                finished: None,
                departed: None,
            })
            .collect();
        // Pending jobs in arrival order (stable on ties by trace order).
        let mut pending: Vec<usize> = (0..jobs.len()).collect();
        pending.sort_by(|&a, &b| jobs[a].arrival.total_cmp(&jobs[b].arrival));
        let mut active: Vec<usize> = Vec::new();
        let mut clock = 0.0f64;
        let mut steps: Vec<StepStat> = Vec::new();
        let mut spine_busy: Vec<(f64, f64)> = Vec::new();
        let mut stats = RunStats::default();
        let mut events_processed = 0u64;
        loop {
            // Step boundary: departures first (a queued job can also give
            // up waiting), then admission in arrival order.
            let depart = |j: usize, outcomes: &mut Vec<JobOutcome>, at: f64| {
                let o = &mut outcomes[j];
                o.steps_cancelled = o.steps_requested - o.steps_completed;
                o.departed = Some(at);
            };
            active.retain(|&j| {
                let leaving = jobs[j].departure.is_some_and(|d| d <= clock);
                if leaving {
                    depart(j, &mut outcomes, clock);
                }
                !leaving
            });
            pending.retain(|&j| {
                let leaving = jobs[j].departure.is_some_and(|d| d <= clock);
                if leaving {
                    depart(j, &mut outcomes, clock);
                }
                !leaving
            });
            let mut used: usize = active.iter().map(|&j| jobs[j].gpus).sum();
            pending.retain(|&j| {
                if jobs[j].arrival <= clock && used + jobs[j].gpus <= capacity {
                    used += jobs[j].gpus;
                    outcomes[j].admitted = Some(clock);
                    active.push(j);
                    false
                } else {
                    true
                }
            });
            if active.is_empty() {
                // Idle: jump to the next arrival, or drain.
                match pending.iter().map(|&j| jobs[j].arrival).next() {
                    Some(a) => {
                        clock = clock.max(a);
                        continue;
                    }
                    None => break,
                }
            }
            // One synchronized step of the resident set, each job at its
            // current density checkpoint.
            let tenants: Vec<Tenant<'_>> = active
                .iter()
                .map(|&j| {
                    let job = &jobs[j];
                    let n = job.checkpoints.len();
                    let idx = (outcomes[j].steps_completed * n / job.steps).min(n - 1);
                    Tenant {
                        spec: job.spec,
                        source: &job.checkpoints[idx],
                        gpus: job.gpus,
                    }
                })
                .collect();
            let tl = self.cluster.simulate(&tenants);
            steps.push(StepStat {
                start: clock,
                makespan: tl.makespan(),
                tenants: active.len(),
                gpus: used,
                link_utilisation: tl.link_utilisation(),
                events: tl.events_processed(),
            });
            events_processed += tl.events_processed();
            for t in tl.tenants() {
                // Every GPU of the tenant walks the same plan; fold the
                // slowest GPU's breakdown per resident GPU.
                for _ in 0..t.gpus {
                    stats.fold(t.step.total(), t.step.forward_stall + t.step.backward_stall);
                }
            }
            for &(s, e) in tl.link_busy() {
                push_busy(&mut spine_busy, clock + s, clock + e);
            }
            clock += tl.makespan();
            active.retain(|&j| {
                outcomes[j].steps_completed += 1;
                let done = outcomes[j].steps_completed == jobs[j].steps;
                if done {
                    outcomes[j].finished = Some(clock);
                }
                !done
            });
        }
        FabricRun {
            steps,
            jobs: outcomes,
            spine_busy,
            stats,
            makespan: clock,
            events_processed,
        }
    }
}

/// One job of a generated churn trace, naming its network by index into
/// the caller's network list (so the trace is spec-agnostic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTemplate {
    /// Submission time, seconds.
    pub arrival: f64,
    /// Training steps requested (1–4).
    pub steps: usize,
    /// Data-parallel width (a power of two ≤ the requested maximum).
    pub gpus: usize,
    /// Early-departure time, if the job leaves mid-run.
    pub departure: Option<f64>,
    /// Index into the caller's network list.
    pub network: usize,
}

/// `splitmix64` — the same generator `loadgen::fill_activations` uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from 53 mantissa bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates a seeded open-loop job mix: exponential interarrivals at
/// `1/mean_interarrival_s` over `horizon_s`, each job drawing its shape
/// (steps 1–4, power-of-two width ≤ `max_gpus`, network index below
/// `networks`, 30% chance of early departure) from a stream derived as
/// `seed ^ idx · φ64` — the same per-index splitting discipline as
/// `cdma_serve::loadgen::Schedule`, so churn scenarios and serving
/// scenarios can share seeds.
///
/// # Panics
///
/// Panics if `networks` or `max_gpus` is zero, or the horizon or mean
/// interarrival is not positive.
pub fn churn_trace(
    seed: u64,
    horizon_s: f64,
    mean_interarrival_s: f64,
    networks: usize,
    max_gpus: usize,
) -> Vec<JobTemplate> {
    assert!(networks > 0, "need at least one network to draw from");
    assert!(max_gpus > 0, "need at least one GPU to grant");
    assert!(horizon_s > 0.0, "horizon must be positive");
    assert!(
        mean_interarrival_s > 0.0,
        "mean interarrival must be positive"
    );
    let mut arrivals = seed;
    let mut trace = Vec::new();
    let mut t = 0.0f64;
    for idx in 0u64.. {
        let u = unit(&mut arrivals);
        t += -(1.0 - u).ln() * mean_interarrival_s;
        if t >= horizon_s {
            break;
        }
        let mut job = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let steps = 1 + (splitmix64(&mut job) % 4) as usize;
        let width_exp = splitmix64(&mut job) % (max_gpus.ilog2() as u64 + 1);
        let gpus = 1usize << width_exp;
        let network = (splitmix64(&mut job) % networks as u64) as usize;
        let departure = (unit(&mut job) < 0.3).then(|| t + unit(&mut job) * horizon_s * 0.5);
        trace.push(JobTemplate {
            arrival: t,
            steps,
            gpus,
            departure,
            network,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::UniformRatio;
    use crate::{ComputeModel, CudnnVersion};
    use cdma_models::zoo;

    fn two_tier(policy: LinkPolicy) -> FabricSpec {
        FabricSpec::new(2, 2, 10.0, policy, 10.0, policy)
    }

    #[test]
    fn shape_labels_round_trip() {
        for shape in [
            FabricShape::Flat,
            FabricShape::Hierarchical { gpus_per_node: 8 },
            FabricShape::Hierarchical { gpus_per_node: 2 },
        ] {
            let label = shape.label();
            assert_eq!(label.parse::<FabricShape>().unwrap(), shape);
        }
        for t in Tenancy::ALL {
            assert_eq!(t.label().parse::<Tenancy>().unwrap(), t);
        }
        assert!("node0".parse::<FabricShape>().is_err());
        assert!("mesh".parse::<FabricShape>().is_err());
        assert!("dynamic".parse::<Tenancy>().is_err());
    }

    #[test]
    fn spine_is_the_bottleneck_when_oversubscribed() {
        // Two nodes of 10 B/s each feed a 10 B/s spine: one flow per
        // node could do 10 B/s locally but the spine halves both.
        let mut fab = FluidFabric::new(two_tier(LinkPolicy::BandwidthShare));
        let a = fab.flow("n0", Some(0));
        let b = fab.flow("n1", Some(1));
        let ra = fab.submit(a, 0.0, 40.0, f64::INFINITY);
        let rb = fab.submit(b, 0.0, 40.0, f64::INFINITY);
        fab.run_until_idle();
        assert_eq!(fab.completion(ra), Some(8.0));
        assert_eq!(fab.completion(rb), Some(8.0));
        // Conservation: every byte crossed its node tier and the spine.
        assert!((fab.spine_bytes() - 80.0).abs() < 1e-9);
        assert!((fab.node_bytes(0) - 40.0).abs() < 1e-9);
        assert!((fab.node_bytes(1) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn node_tier_is_the_bottleneck_when_flows_share_a_node() {
        // Both flows on node 0: its 10 B/s link halves them even though
        // the spine has headroom; node 1 stays idle.
        let spec = FabricSpec::new(
            2,
            2,
            10.0,
            LinkPolicy::BandwidthShare,
            100.0,
            LinkPolicy::BandwidthShare,
        );
        let mut fab = FluidFabric::new(spec);
        let a = fab.flow("n0.g0", Some(0));
        let b = fab.flow("n0.g1", Some(0));
        let ra = fab.submit(a, 0.0, 40.0, f64::INFINITY);
        let rb = fab.submit(b, 0.0, 40.0, f64::INFINITY);
        fab.run_until_idle();
        assert_eq!(fab.completion(ra), Some(8.0));
        assert_eq!(fab.completion(rb), Some(8.0));
        assert!(fab.node_busy(1).is_empty());
        assert_eq!(fab.node_bytes(1), 0.0);
    }

    #[test]
    fn spine_only_flows_skip_the_node_tiers() {
        let mut fab = FluidFabric::new(two_tier(LinkPolicy::BandwidthShare));
        let ar = fab.flow("allreduce", None);
        let r = fab.submit(ar, 0.0, 50.0, f64::INFINITY);
        fab.run_until_idle();
        // Full spine bandwidth, node tiers untouched.
        assert_eq!(fab.completion(r), Some(5.0));
        assert_eq!(fab.node_bytes(0), 0.0);
        assert!(fab.node_busy(0).is_empty());
        assert!((fab.spine_bytes() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn round_robin_tiers_are_equal_slice_ceilings() {
        // Three flows on one round-robin node of 12 B/s: 4 B/s each,
        // even though the bandwidth-share spine would allow more.
        let spec = FabricSpec::new(
            1,
            4,
            12.0,
            LinkPolicy::RoundRobin,
            100.0,
            LinkPolicy::BandwidthShare,
        );
        let mut fab = FluidFabric::new(spec);
        let flows: Vec<FlowId> = (0..3)
            .map(|i| fab.flow(&format!("g{i}"), Some(0)))
            .collect();
        let reqs: Vec<RequestId> = flows
            .iter()
            .map(|&f| fab.submit(f, 0.0, 40.0, f64::INFINITY))
            .collect();
        fab.run_until_idle();
        for r in reqs {
            assert_eq!(fab.completion(r), Some(10.0));
        }
    }

    #[test]
    fn rate_caps_leave_bandwidth_to_uncapped_flows() {
        // A capped flow (2 B/s) shares a 10 B/s spine with an uncapped
        // one: water-filling gives the uncapped flow the remaining 8.
        let spec = FabricSpec::new(
            1,
            2,
            100.0,
            LinkPolicy::BandwidthShare,
            10.0,
            LinkPolicy::BandwidthShare,
        );
        let mut fab = FluidFabric::new(spec);
        let a = fab.flow("capped", Some(0));
        let b = fab.flow("open", Some(0));
        let ra = fab.submit(a, 0.0, 4.0, 2.0);
        let rb = fab.submit(b, 0.0, 16.0, f64::INFINITY);
        fab.run_until_idle();
        assert_eq!(fab.completion(ra), Some(2.0));
        assert_eq!(fab.completion(rb), Some(2.0));
    }

    #[test]
    fn busy_intervals_stay_disjoint_per_tier() {
        let mut fab = FluidFabric::new(two_tier(LinkPolicy::BandwidthShare));
        let a = fab.flow("n0", Some(0));
        let b = fab.flow("n1", Some(1));
        fab.submit(a, 0.0, 10.0, f64::INFINITY);
        fab.submit(b, 3.0, 10.0, f64::INFINITY);
        fab.submit(a, 9.0, 5.0, f64::INFINITY);
        fab.run_until_idle();
        for busy in [fab.spine_busy(), fab.node_busy(0), fab.node_busy(1)] {
            let mut prev = f64::NEG_INFINITY;
            for &(s, e) in busy {
                assert!(e > s && s >= prev - 1e-12, "tier double-booked");
                prev = e;
            }
        }
    }

    #[test]
    fn churn_trace_is_deterministic_and_in_bounds() {
        let a = churn_trace(7, 100.0, 5.0, 3, 16);
        let b = churn_trace(7, 100.0, 5.0, 3, 16);
        assert_eq!(a, b, "same seed, same trace");
        assert!(!a.is_empty());
        let c = churn_trace(8, 100.0, 5.0, 3, 16);
        assert_ne!(a, c, "different seed, different trace");
        let mut prev = 0.0;
        for j in &a {
            assert!(j.arrival >= prev && j.arrival < 100.0);
            prev = j.arrival;
            assert!((1..=4).contains(&j.steps));
            assert!(j.gpus.is_power_of_two() && j.gpus <= 16);
            assert!(j.network < 3);
            if let Some(d) = j.departure {
                assert!(d >= j.arrival);
            }
        }
    }

    #[test]
    fn churn_run_conserves_every_job() {
        let spec = zoo::alexnet();
        let source = FidelitySource::Uniform(UniformRatio::uniform(&spec, 2.0));
        let checkpoints = [source];
        let cluster = ClusterSim::new(
            SystemConfig::titan_x_pcie3(),
            ComputeModel::titan_x(CudnnVersion::V5),
            LinkPolicy::BandwidthShare,
        )
        .with_fabric(FabricSpec::new(
            2,
            2,
            SystemConfig::titan_x_pcie3().pcie_bw,
            LinkPolicy::BandwidthShare,
            SystemConfig::titan_x_pcie3().pcie_bw,
            LinkPolicy::BandwidthShare,
        ));
        let jobs: Vec<Job<'_>> = vec![
            Job {
                spec: &spec,
                gpus: 2,
                arrival: 0.0,
                steps: 3,
                departure: None,
                checkpoints: &checkpoints,
            },
            Job {
                spec: &spec,
                gpus: 4,
                arrival: 0.0,
                steps: 2,
                departure: None,
                checkpoints: &checkpoints,
            },
            Job {
                spec: &spec,
                gpus: 1,
                arrival: 0.1,
                steps: 10,
                departure: Some(0.2),
                checkpoints: &checkpoints,
            },
        ];
        let run = FabricSim::new(cluster).run(&jobs);
        // Job 1 (4-wide) cannot co-reside with job 0 on 4 slots — the
        // skip-ahead admits job 2 (1-wide) instead.
        for o in &run.jobs {
            assert_eq!(
                o.steps_completed + o.steps_cancelled,
                o.steps_requested,
                "{}: steps leaked",
                o.network
            );
        }
        assert!(run.jobs[0].finished.is_some());
        assert!(run.jobs[1].finished.is_some());
        assert!(run.jobs[2].departed.is_some());
        assert!(run.stats.gpu_steps > 0);
        assert!(run.makespan > 0.0);
        assert!(run.spine_utilisation() > 0.0 && run.spine_utilisation() <= 1.0 + 1e-12);
        let folded: u64 = run.steps.iter().map(|s| s.gpus as u64).sum();
        assert_eq!(run.stats.gpu_steps, folded, "streaming fold missed a GPU");
    }
}
