//! # cdma-vdnn — virtualized-DNN memory management simulation
//!
//! vDNN (Rhu et al., MICRO 2016) virtualizes GPU memory by offloading each
//! layer's activation maps to CPU memory during forward propagation and
//! prefetching them back during backward propagation (Fig. 2 of the cDMA
//! paper). When a transfer outlasts the computation it overlaps with, the
//! GPU stalls — the performance problem cDMA attacks.
//!
//! This crate reproduces the paper's hybrid evaluation methodology
//! (Section VI) as a simulation:
//!
//! * [`ComputeModel`] — per-layer compute times from FLOP counts and
//!   cuDNN-version-dependent efficiencies ([`CudnnVersion`], Fig. 3a);
//! * [`RatioTable`] — measured compression ratios (algorithm × layout ×
//!   density) obtained by running the real codecs from `cdma-compress` on
//!   clustered activations from `cdma-sparsity`;
//! * [`traffic`] — offloaded-byte accounting per network (Fig. 11/12);
//! * [`timeline`] — the event-driven training-step simulator: a shared
//!   event queue over the GPU compute stream, the cDMA read path and the
//!   PCIe link, fed by a [`TransferSource`] at one of three fidelity levels
//!   ([`UniformRatio`] analytic ratios, [`ProfiledDensity`] trajectory
//!   ratios, [`MeasuredStream`] real compressed line sizes);
//! * [`cluster`] — the multi-GPU shared-link layer (Section IX): per-GPU
//!   step timelines and per-tenant gradient all-reduce streams contending
//!   for one [`LinkArbiter`] under a [`LinkPolicy`]
//!   ([`ClusterSim`]), with [`multi_gpu::MultiGpuSim`] as its thin
//!   analytic-surface wrapper;
//! * [`StepSim`] — the legacy layer-by-layer forward/backward interface
//!   (Fig. 3b and Fig. 13), now a thin wrapper over the timeline with the
//!   [`UniformRatio`] source.
//!
//! ```
//! use cdma_models::zoo;
//! use cdma_gpusim::SystemConfig;
//! use cdma_vdnn::{ComputeModel, CudnnVersion, StepSim, TransferPolicy};
//!
//! let spec = zoo::alexnet();
//! let sim = StepSim::new(
//!     SystemConfig::titan_x_pcie3(),
//!     ComputeModel::titan_x(CudnnVersion::V5),
//! );
//! let oracle = sim.step_time(&spec, TransferPolicy::Oracle);
//! let vdnn = sim.step_time(&spec, TransferPolicy::uniform(&spec, 1.0));
//! assert!(vdnn.total() >= oracle.total());
//! ```

#![deny(missing_docs)]

pub mod calendar;
pub mod cluster;
mod compute;
pub mod fabric;
pub mod memory;
pub mod multi_gpu;
mod ratio;
mod schedule;
pub mod timeline;
pub mod traffic;

pub use calendar::CalendarQueue;
pub use cluster::{ClusterSim, ClusterTimeline, GradientAllReduce, Tenant, TenantResult};
pub use compute::{ComputeModel, CudnnVersion};
pub use fabric::{
    churn_trace, FabricRun, FabricShape, FabricSim, FabricSpec, FluidFabric, Job, JobOutcome,
    JobTemplate, RunStats, StepStat, Tenancy,
};
pub use ratio::RatioTable;
pub use schedule::{StepBreakdown, StepSim, TransferPolicy};
pub use timeline::{
    Fidelity, FidelitySource, LinkArbiter, LinkPolicy, MeasuredStream, Payload, ProfiledDensity,
    StepTimeline, TimelineSim, TransferSource, UniformRatio,
};
