//! Multi-GPU data-parallel training over a shared host interconnect —
//! the Section IX scenario quantified.
//!
//! "With a multi-GPU DNN platform where 4 to 8 GPUs share the same
//! communication channel, the bandwidth allocated per each single GPU is
//! still 10–20 GB/sec, similar to PCIe (gen3). As a result, reducing the
//! offloading traffic between CPU and GPU is still extremely important."
//!
//! In data-parallel training each GPU runs the full network on `1/g` of the
//! minibatch and the link additionally carries a gradient all-reduce of the
//! weights each step. Activations shrink with the per-GPU batch; weight
//! gradients do not — so the shared link gets more congested as `g` grows,
//! which is exactly when cDMA's traffic reduction matters most.

use cdma_gpusim::SystemConfig;
use cdma_models::NetworkSpec;

use crate::{ComputeModel, StepBreakdown, StepSim, TransferPolicy};

/// A data-parallel training platform: `gpus` identical GPUs sharing one
/// host link.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuSim {
    base: SystemConfig,
    compute: ComputeModel,
    gpus: usize,
}

impl MultiGpuSim {
    /// Creates a platform of `gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(base: SystemConfig, compute: ComputeModel, gpus: usize) -> Self {
        assert!(gpus > 0, "need at least one GPU");
        MultiGpuSim {
            base,
            compute,
            gpus,
        }
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Per-GPU effective link bandwidth (even sharing).
    pub fn per_gpu_link_bw(&self) -> f64 {
        self.base.pcie_bw / self.gpus as f64
    }

    /// Simulates one data-parallel step: each GPU computes `batch/g` images
    /// with vDNN offloading at `ratio`, then the gradient all-reduce
    /// serializes on the shared link.
    ///
    /// Returns `(per-GPU step breakdown, all-reduce seconds)`.
    pub fn step_time(&self, spec: &NetworkSpec, ratio: f64) -> (StepBreakdown, f64) {
        // Per-GPU view: a smaller batch over a slice of the link.
        let per_gpu_cfg = self.base.shared_link(self.gpus);
        // Rebuild a per-GPU spec by scaling the batch down. NetworkSpec is
        // immutable; the compute/traffic models scale linearly in batch, so
        // we scale times instead: compute and activation bytes both divide
        // by g, which is equivalent to running the same spec and dividing
        // transfer+compute times by g, except the link share already
        // reflects the sharing — so simulate with full batch and divide the
        // batch-linear parts by g.
        let sim = StepSim::new(per_gpu_cfg, self.compute);
        let full = sim.step_time(spec, TransferPolicy::uniform(spec, ratio));
        let scale = 1.0 / self.gpus as f64;
        let breakdown = StepBreakdown {
            forward: full.forward * scale,
            backward: full.backward * scale,
            forward_stall: full.forward_stall * scale,
            backward_stall: full.backward_stall * scale,
        };
        // Ring all-reduce: each GPU sends/receives ~2·(g-1)/g of the weight
        // bytes over its link share.
        let allreduce = if self.gpus == 1 {
            0.0
        } else {
            let bytes =
                spec.weight_bytes() as f64 * 2.0 * (self.gpus as f64 - 1.0) / self.gpus as f64;
            bytes / self.per_gpu_link_bw()
        };
        (breakdown, allreduce)
    }

    /// End-to-end step latency including the all-reduce.
    pub fn total_step(&self, spec: &NetworkSpec, ratio: f64) -> f64 {
        let (b, ar) = self.step_time(spec, ratio);
        b.total() + ar
    }

    /// Speedup of cDMA (at `ratio`) over plain vDNN on this platform.
    pub fn cdma_gain(&self, spec: &NetworkSpec, ratio: f64) -> f64 {
        self.total_step(spec, 1.0) / self.total_step(spec, ratio) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CudnnVersion;
    use cdma_models::zoo;

    fn platform(gpus: usize) -> MultiGpuSim {
        MultiGpuSim::new(
            SystemConfig::titan_x_nvlink(),
            ComputeModel::titan_x(CudnnVersion::V5),
            gpus,
        )
    }

    #[test]
    fn link_share_divides_evenly() {
        assert!((platform(4).per_gpu_link_bw() - 18e9).abs() < 1.0);
        assert!((platform(8).per_gpu_link_bw() - 9e9).abs() < 1.0);
    }

    #[test]
    fn single_gpu_has_no_allreduce() {
        let (_, ar) = platform(1).step_time(&zoo::alexnet(), 1.0);
        assert_eq!(ar, 0.0);
    }

    #[test]
    fn cdma_gain_grows_with_gpu_count() {
        // The Section IX argument: more GPUs -> thinner link share ->
        // bigger win from compression.
        let spec = zoo::squeezenet();
        let g1 = platform(1).cdma_gain(&spec, 2.6);
        let g4 = platform(4).cdma_gain(&spec, 2.6);
        let g8 = platform(8).cdma_gain(&spec, 2.6);
        assert!(g4 > g1, "4-GPU gain {g4} should exceed 1-GPU {g1}");
        assert!(g8 > g4, "8-GPU gain {g8} should exceed 4-GPU {g4}");
        assert!(g8 > 0.15, "8-GPU gain {g8}");
    }

    #[test]
    fn allreduce_scales_with_weights_not_batch() {
        let (_, ar_alex) = platform(4).step_time(&zoo::alexnet(), 1.0);
        let (_, ar_squeeze) = platform(4).step_time(&zoo::squeezenet(), 1.0);
        // AlexNet has ~50x SqueezeNet's weights: its all-reduce dominates.
        assert!(ar_alex > 20.0 * ar_squeeze);
    }

    #[test]
    fn per_gpu_compute_scales_down() {
        let spec = zoo::vgg();
        let (b1, _) = platform(1).step_time(&spec, 1.0);
        let (b4, _) = platform(4).step_time(&spec, 1.0);
        // Compute scales as 1/g; stalls grow relatively (thinner link), so
        // the total shrinks by less than 4x.
        assert!(b4.total() < b1.total());
        assert!(b4.total() > b1.total() / 4.0);
    }
}
