//! Multi-GPU data-parallel training over a shared host interconnect —
//! the Section IX scenario quantified.
//!
//! "With a multi-GPU DNN platform where 4 to 8 GPUs share the same
//! communication channel, the bandwidth allocated per each single GPU is
//! still 10–20 GB/sec, similar to PCIe (gen3). As a result, reducing the
//! offloading traffic between CPU and GPU is still extremely important."
//!
//! In data-parallel training each GPU runs the full network on `1/g` of the
//! minibatch and the link additionally carries a gradient all-reduce of the
//! weights each step. Activations shrink with the per-GPU batch; weight
//! gradients do not — so the shared link gets more congested as `g` grows,
//! which is exactly when cDMA's traffic reduction matters most.
//!
//! [`MultiGpuSim`] is the analytic *surface* of that scenario: a thin
//! wrapper over the event-driven [`ClusterSim`]
//! with a single symmetric tenant and fluid bandwidth-share arbitration —
//! exactly as [`StepSim`](crate::StepSim) wraps
//! [`TimelineSim`](crate::timeline::TimelineSim). In this contention-free
//! case the fluid fair share reduces to the paper's static `PCIe / g`
//! split, so the wrapper reproduces the legacy closed form within 1e-9
//! (pinned against an independent reimplementation in
//! `tests/multi_gpu_cross_validation.rs`). Use the cluster simulator
//! directly for link-contention studies: heterogeneous tenants, round-robin
//! arbitration, or overlapping the all-reduce with backward propagation.

use cdma_gpusim::SystemConfig;
use cdma_models::NetworkSpec;

use crate::cluster::{ClusterSim, GradientAllReduce, Tenant};
use crate::timeline::{LinkPolicy, UniformRatio};
use crate::{ComputeModel, StepBreakdown};

/// A data-parallel training platform: `gpus` identical GPUs sharing one
/// host link.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuSim {
    base: SystemConfig,
    compute: ComputeModel,
    gpus: usize,
}

impl MultiGpuSim {
    /// Creates a platform of `gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(base: SystemConfig, compute: ComputeModel, gpus: usize) -> Self {
        assert!(gpus > 0, "need at least one GPU");
        MultiGpuSim {
            base,
            compute,
            gpus,
        }
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Per-GPU effective link bandwidth (even sharing).
    pub fn per_gpu_link_bw(&self) -> f64 {
        self.base.pcie_bw / self.gpus as f64
    }

    /// The equivalent event-driven cluster simulator (fluid fair-share
    /// arbitration, all-reduce serialized after the step).
    pub fn cluster(&self) -> ClusterSim {
        ClusterSim::new(self.base, self.compute, LinkPolicy::BandwidthShare)
    }

    /// The checked gradient all-reduce byte accounting of one step.
    ///
    /// # Panics
    ///
    /// Panics if `spec`'s weight bytes disagree with `parameters × 4` (see
    /// [`GradientAllReduce::ring`]).
    pub fn allreduce(&self, spec: &NetworkSpec) -> GradientAllReduce {
        GradientAllReduce::ring(spec, self.gpus)
    }

    /// Simulates one data-parallel step: each GPU computes `batch/g` images
    /// with vDNN offloading at `ratio`, then the gradient all-reduce
    /// serializes on the shared link.
    ///
    /// Returns `(per-GPU step breakdown, all-reduce seconds)`.
    pub fn step_time(&self, spec: &NetworkSpec, ratio: f64) -> (StepBreakdown, f64) {
        let source = UniformRatio::uniform(spec, ratio);
        let tl = self.cluster().simulate(&[Tenant {
            spec,
            source: &source,
            gpus: self.gpus,
        }]);
        let t = &tl.tenants()[0];
        (t.step, t.allreduce)
    }

    /// End-to-end step latency including the all-reduce.
    pub fn total_step(&self, spec: &NetworkSpec, ratio: f64) -> f64 {
        let (b, ar) = self.step_time(spec, ratio);
        b.total() + ar
    }

    /// Speedup of cDMA (at `ratio`) over plain vDNN on this platform.
    pub fn cdma_gain(&self, spec: &NetworkSpec, ratio: f64) -> f64 {
        self.total_step(spec, 1.0) / self.total_step(spec, ratio) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CudnnVersion;
    use cdma_models::zoo;

    fn platform(gpus: usize) -> MultiGpuSim {
        MultiGpuSim::new(
            SystemConfig::titan_x_nvlink(),
            ComputeModel::titan_x(CudnnVersion::V5),
            gpus,
        )
    }

    #[test]
    fn link_share_divides_evenly() {
        assert!((platform(4).per_gpu_link_bw() - 18e9).abs() < 1.0);
        assert!((platform(8).per_gpu_link_bw() - 9e9).abs() < 1.0);
    }

    #[test]
    fn single_gpu_has_no_allreduce() {
        let (_, ar) = platform(1).step_time(&zoo::alexnet(), 1.0);
        assert_eq!(ar, 0.0);
    }

    #[test]
    fn cdma_gain_grows_with_gpu_count() {
        // The Section IX argument: more GPUs -> thinner link share ->
        // bigger win from compression.
        let spec = zoo::squeezenet();
        let g1 = platform(1).cdma_gain(&spec, 2.6);
        let g4 = platform(4).cdma_gain(&spec, 2.6);
        let g8 = platform(8).cdma_gain(&spec, 2.6);
        assert!(g4 > g1, "4-GPU gain {g4} should exceed 1-GPU {g1}");
        assert!(g8 > g4, "8-GPU gain {g8} should exceed 4-GPU {g4}");
        assert!(g8 > 0.15, "8-GPU gain {g8}");
    }

    #[test]
    fn allreduce_scales_with_weights_not_batch() {
        let (_, ar_alex) = platform(4).step_time(&zoo::alexnet(), 1.0);
        let (_, ar_squeeze) = platform(4).step_time(&zoo::squeezenet(), 1.0);
        // AlexNet has ~50x SqueezeNet's weights: its all-reduce dominates.
        assert!(ar_alex > 20.0 * ar_squeeze);
    }

    #[test]
    fn per_gpu_compute_scales_down() {
        let spec = zoo::vgg();
        let (b1, _) = platform(1).step_time(&spec, 1.0);
        let (b4, _) = platform(4).step_time(&spec, 1.0);
        // Compute scales as 1/g; stalls grow relatively (thinner link), so
        // the total shrinks by less than 4x.
        assert!(b4.total() < b1.total());
        assert!(b4.total() > b1.total() / 4.0);
    }

    #[test]
    fn allreduce_seconds_match_the_checked_byte_accounting() {
        // The wrapper's all-reduce time must be exactly the checked ring
        // bytes over the full link (g flows at 1/g share each).
        let spec = zoo::alexnet();
        let p = platform(4);
        let (_, ar) = p.step_time(&spec, 1.0);
        let ring = p.allreduce(&spec);
        assert_eq!(ring.total_wire_bytes(), spec.total_params() * 4 * 6);
        let expect = ring.seconds_at(SystemConfig::titan_x_nvlink().pcie_bw);
        assert!(
            (ar - expect).abs() / expect < 1e-9,
            "all-reduce {ar} vs checked bytes {expect}"
        );
    }
}
