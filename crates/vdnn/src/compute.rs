use cdma_models::{LayerSpec, SpecKind};

/// cuDNN library generations, whose successive speedups (Fig. 3a: v5 is on
/// average 2.2× v1) shrink the window available for hiding PCIe transfers
/// and thereby *grow* vDNN's overhead (Fig. 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CudnnVersion {
    /// cuDNN v1 (2014).
    V1,
    /// cuDNN v2.
    V2,
    /// cuDNN v3.
    V3,
    /// cuDNN v4.
    V4,
    /// cuDNN v5 (the paper's primary evaluation target).
    V5,
}

impl CudnnVersion {
    /// All versions in release order.
    pub const ALL: [CudnnVersion; 5] = [
        CudnnVersion::V1,
        CudnnVersion::V2,
        CudnnVersion::V3,
        CudnnVersion::V4,
        CudnnVersion::V5,
    ];

    /// Label as used in Fig. 3 ("v1"…"v5").
    pub fn label(&self) -> &'static str {
        match self {
            CudnnVersion::V1 => "v1",
            CudnnVersion::V2 => "v2",
            CudnnVersion::V3 => "v3",
            CudnnVersion::V4 => "v4",
            CudnnVersion::V5 => "v5",
        }
    }

    /// Convolution-path efficiency relative to v5. Convolutions improved
    /// the most across releases (FFT/Winograd algorithms).
    fn conv_efficiency(&self) -> f64 {
        match self {
            CudnnVersion::V1 => 0.40,
            CudnnVersion::V2 => 0.52,
            CudnnVersion::V3 => 0.68,
            CudnnVersion::V4 => 0.85,
            CudnnVersion::V5 => 1.00,
        }
    }

    /// GEMM (fc) path efficiency relative to v5 — already mature in v1.
    fn fc_efficiency(&self) -> f64 {
        match self {
            CudnnVersion::V1 => 0.70,
            CudnnVersion::V2 => 0.78,
            CudnnVersion::V3 => 0.85,
            CudnnVersion::V4 => 0.93,
            CudnnVersion::V5 => 1.00,
        }
    }
}

/// Per-layer compute-time model: `time = FLOPs / (peak × kind-utilization ×
/// version-efficiency)`.
///
/// The paper measures wall-clock times on a real Titan X; we substitute this
/// FLOP-proportional model (see DESIGN.md). Utilization constants reflect
/// how cuDNN workloads behave: convolutions run near half of peak,
/// GEMM-bound fc layers lower (they are bandwidth-bound at these batch
/// sizes), pooling/normalization are memory-bound streaming passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Library generation.
    pub version: CudnnVersion,
}

impl ComputeModel {
    /// Titan X (Maxwell): ~6.1 TFLOP/s fp32.
    pub fn titan_x(version: CudnnVersion) -> Self {
        ComputeModel {
            peak_flops: 6.1e12,
            version,
        }
    }

    fn utilization(&self, kind: &SpecKind) -> f64 {
        match kind {
            SpecKind::Conv { kernel, .. } => {
                // 1x1 convolutions (NiN/SqueezeNet/GoogLeNet reductions)
                // reuse less data and run at lower efficiency.
                let base = if *kernel == 1 { 0.42 } else { 0.65 };
                base * self.version.conv_efficiency()
            }
            SpecKind::Fc => 0.33 * self.version.fc_efficiency(),
            // Streaming, bandwidth-bound layers barely improved across
            // cuDNN versions.
            SpecKind::Pool { .. } | SpecKind::Norm => 0.06,
        }
    }

    /// Forward time of one layer for a batch, seconds.
    pub fn forward_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        let flops = layer.flops as f64 * batch as f64;
        flops / (self.peak_flops * self.utilization(&layer.kind))
    }

    /// Backward time of one layer for a batch, seconds. Weight-bearing
    /// layers do two gradient computations (`dX` and `dW`), so backward
    /// costs roughly twice the forward (Section II-B).
    pub fn backward_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        let mult = match layer.kind {
            SpecKind::Conv { .. } | SpecKind::Fc => 2.0,
            SpecKind::Pool { .. } | SpecKind::Norm => 1.0,
        };
        mult * self.forward_time(layer, batch)
    }

    /// Total forward+backward compute for a network step, seconds.
    pub fn step_compute_time(&self, spec: &cdma_models::NetworkSpec) -> f64 {
        spec.layers()
            .iter()
            .map(|l| self.forward_time(l, spec.batch()) + self.backward_time(l, spec.batch()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_models::zoo;

    #[test]
    fn v5_speedup_over_v1_is_about_2_2x() {
        // Fig. 3(a): "cuDNN (v5) offers an average 2.2x the performance of
        // the first version".
        let mut speedups = Vec::new();
        for spec in zoo::all_networks() {
            let t1 = ComputeModel::titan_x(CudnnVersion::V1).step_compute_time(&spec);
            let t5 = ComputeModel::titan_x(CudnnVersion::V5).step_compute_time(&spec);
            speedups.push(t1 / t5);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!((1.9..2.6).contains(&avg), "avg v1->v5 speedup {avg}");
    }

    #[test]
    fn speedup_monotone_across_versions() {
        let spec = zoo::vgg();
        let mut prev = f64::INFINITY;
        for v in CudnnVersion::ALL {
            let t = ComputeModel::titan_x(v).step_compute_time(&spec);
            assert!(
                t < prev,
                "{} should be faster than its predecessor",
                v.label()
            );
            prev = t;
        }
    }

    #[test]
    fn iteration_times_are_plausible() {
        // Sanity versus published Titan X numbers: AlexNet (b=256) trains
        // at very roughly 4-6 iterations/s fwd+bwd on Maxwell-class
        // hardware; VGG-16 (b=128) near 1-2 s/iteration.
        let alex = ComputeModel::titan_x(CudnnVersion::V5).step_compute_time(&zoo::alexnet());
        let vgg = ComputeModel::titan_x(CudnnVersion::V5).step_compute_time(&zoo::vgg());
        assert!((0.1..0.6).contains(&alex), "AlexNet step {alex}s");
        assert!((1.0..4.0).contains(&vgg), "VGG step {vgg}s");
    }

    #[test]
    fn backward_is_twice_forward_for_weight_layers() {
        let spec = zoo::alexnet();
        let m = ComputeModel::titan_x(CudnnVersion::V5);
        let conv = spec.layer("conv2").unwrap();
        assert!((m.backward_time(conv, 256) - 2.0 * m.forward_time(conv, 256)).abs() < 1e-12);
        let pool = spec.layer("pool0").unwrap();
        assert!((m.backward_time(pool, 256) - m.forward_time(pool, 256)).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_convs_run_less_efficiently() {
        let m = ComputeModel::titan_x(CudnnVersion::V5);
        let spec = zoo::nin();
        let c11 = spec.layer("cccp1").unwrap();
        let c3 = spec.layer("conv3").unwrap();
        // Same FLOPs would take longer through the 1x1 path.
        let t11 = m.forward_time(c11, 1) / c11.flops as f64;
        let t3 = m.forward_time(c3, 1) / c3.flops as f64;
        assert!(t11 > t3);
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(CudnnVersion::V1.label(), "v1");
        assert_eq!(CudnnVersion::V5.label(), "v5");
        assert_eq!(CudnnVersion::ALL.len(), 5);
    }
}
