use std::collections::HashMap;

use cdma_compress::{windowed, Algorithm};
use cdma_sparsity::ActivationGen;
use cdma_tensor::{Layout, Shape4};

/// Measured compression ratios as a function of (algorithm, layout,
/// density).
///
/// Fig. 11 needs the compression ratio of every layer of every network at
/// every training checkpoint — far too much data to compress at full
/// ImageNet scale. Real activation-map compression depends on the *density
/// and spatial statistics*, not on the absolute map size, so the table runs
/// the real codecs once per (algorithm, layout, density) grid point on a
/// representative clustered activation tensor and interpolates. ZVC's
/// entries are cross-checked against its closed form in the tests.
#[derive(Debug, Clone)]
pub struct RatioTable {
    densities: Vec<f64>,
    ratios: HashMap<(Algorithm, Layout), Vec<f64>>,
}

impl RatioTable {
    /// Builds the full-resolution table (17 density points; used by the
    /// benches).
    pub fn build(seed: u64) -> Self {
        Self::build_with_grid(seed, 17, Shape4::new(2, 24, 27, 27))
    }

    /// Builds a coarse table quickly (used by unit tests).
    pub fn build_fast(seed: u64) -> Self {
        Self::build_with_grid(seed, 7, Shape4::new(2, 12, 19, 19))
    }

    fn build_with_grid(seed: u64, points: usize, shape: Shape4) -> Self {
        assert!(points >= 2, "need at least two grid points");
        let densities: Vec<f64> = (0..points)
            .map(|i| 0.02 + (0.98 - 0.02) * i as f64 / (points - 1) as f64)
            .collect();
        let mut ratios = HashMap::new();
        for layout in Layout::ALL {
            // One generator per layout so all algorithms see identical data.
            for alg in Algorithm::ACTIVATION {
                ratios.insert((alg, layout), Vec::with_capacity(points));
            }
            for (i, &d) in densities.iter().enumerate() {
                let mut gen = ActivationGen::seeded(seed.wrapping_add(i as u64));
                let t = gen.generate(shape, layout, d);
                for alg in Algorithm::ACTIVATION {
                    let codec = alg.codec();
                    let stats = windowed::compress_stats(
                        &codec,
                        t.as_slice(),
                        windowed::DEFAULT_WINDOW_BYTES,
                    );
                    ratios
                        .get_mut(&(alg, layout))
                        .expect("inserted above")
                        .push(stats.ratio());
                }
            }
        }
        RatioTable { densities, ratios }
    }

    /// Interpolated compression ratio at `density` for an algorithm/layout.
    ///
    /// Interpolation happens in *compressed-fraction* space (`1/ratio`),
    /// which is linear in density for ZVC (mask + non-zeros) and close to
    /// linear for the other codecs; interpolating the highly convex ratio
    /// curve directly would overestimate between grid points.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]`.
    pub fn ratio(&self, alg: Algorithm, layout: Layout, density: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&density),
            "density must be in [0, 1], got {density}"
        );
        let ys = &self.ratios[&(alg, layout)];
        let xs = &self.densities;
        if density <= xs[0] {
            return ys[0];
        }
        if density >= *xs.last().expect("non-empty grid") {
            return *ys.last().expect("non-empty grid");
        }
        let hi = xs.partition_point(|&x| x < density).max(1);
        let (x0, x1) = (xs[hi - 1], xs[hi]);
        let (inv0, inv1) = (1.0 / ys[hi - 1], 1.0 / ys[hi]);
        let inv = inv0 + (inv1 - inv0) * (density - x0) / (x1 - x0);
        1.0 / inv
    }

    /// The density grid points.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_compress::Zvc;

    fn table() -> RatioTable {
        RatioTable::build_fast(7)
    }

    #[test]
    fn zvc_matches_closed_form() {
        let t = table();
        for &d in &[0.1, 0.3, 0.5, 0.8] {
            let measured = t.ratio(Algorithm::Zvc, Layout::Nchw, d);
            let analytic = Zvc::analytic_ratio(d);
            assert!(
                (measured - analytic).abs() / analytic < 0.12,
                "d={d}: measured {measured}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn zvc_is_layout_insensitive() {
        let t = table();
        for &d in &[0.2, 0.5, 0.8] {
            let a = t.ratio(Algorithm::Zvc, Layout::Nchw, d);
            let b = t.ratio(Algorithm::Zvc, Layout::Nhwc, d);
            let c = t.ratio(Algorithm::Zvc, Layout::Chwn, d);
            assert!((a - b).abs() / a < 0.03, "d={d}: {a} vs {b}");
            assert!((a - c).abs() / a < 0.03, "d={d}: {a} vs {c}");
        }
    }

    #[test]
    fn rle_prefers_nchw() {
        // Fig. 11: "RLE performs best with NCHW ... with high sensitivity
        // to the underlying data layouts".
        let t = table();
        for &d in &[0.2, 0.4, 0.6] {
            let nchw = t.ratio(Algorithm::Rle, Layout::Nchw, d);
            let nhwc = t.ratio(Algorithm::Rle, Layout::Nhwc, d);
            assert!(nchw > nhwc, "d={d}: NCHW {nchw} <= NHWC {nhwc}");
        }
    }

    #[test]
    fn zlib_beats_or_matches_zvc_on_nchw() {
        // zlib also compresses the non-zero payload.
        let t = table();
        for &d in &[0.2, 0.5] {
            let zl = t.ratio(Algorithm::Zlib, Layout::Nchw, d);
            let zv = t.ratio(Algorithm::Zvc, Layout::Nchw, d);
            assert!(zl > 0.9 * zv, "d={d}: zlib {zl} vs zvc {zv}");
        }
    }

    #[test]
    fn ratios_decrease_with_density() {
        let t = table();
        for alg in Algorithm::ACTIVATION {
            let sparse = t.ratio(alg, Layout::Nchw, 0.1);
            let dense = t.ratio(alg, Layout::Nchw, 0.9);
            assert!(sparse > dense, "{alg}: {sparse} vs {dense}");
        }
    }

    #[test]
    fn adaptive_tracks_the_best_activation_codec() {
        // The per-window picker can lose a little to a whole-stream codec
        // (per-window container overhead) but must stay within a few
        // percent of the best single codec at every grid point.
        let t = table();
        for layout in Layout::ALL {
            for &d in &[0.1, 0.3, 0.5, 0.8] {
                let best = [Algorithm::Rle, Algorithm::Zvc, Algorithm::Zlib]
                    .into_iter()
                    .map(|a| t.ratio(a, layout, d))
                    .fold(f64::MIN, f64::max);
                let ad = t.ratio(Algorithm::Adaptive, layout, d);
                assert!(
                    ad > 0.93 * best,
                    "{layout:?} d={d}: adaptive {ad} vs best {best}"
                );
            }
        }
    }

    #[test]
    fn interpolation_is_bounded_by_grid_neighbours() {
        let t = table();
        let ys = &t.ratios[&(Algorithm::Zvc, Layout::Nchw)];
        let xs = t.densities();
        let mid = (xs[2] + xs[3]) / 2.0;
        let v = t.ratio(Algorithm::Zvc, Layout::Nchw, mid);
        let (lo, hi) = (ys[3].min(ys[2]), ys[3].max(ys[2]));
        assert!((lo..=hi).contains(&v));
    }

    #[test]
    fn extremes_clamp_to_grid_ends() {
        let t = table();
        assert_eq!(
            t.ratio(Algorithm::Zvc, Layout::Nchw, 0.0),
            t.ratio(Algorithm::Zvc, Layout::Nchw, 0.02)
        );
        assert_eq!(
            t.ratio(Algorithm::Zvc, Layout::Nchw, 1.0),
            t.ratio(Algorithm::Zvc, Layout::Nchw, 0.98)
        );
    }
}
