//! Seeded property loops over the [`LinkArbiter`] invariants, ≥1000
//! iterations total across the four properties:
//!
//! 1. **byte conservation** — per flow, delivered bytes equal offered
//!    bytes once the link drains (and every request completes);
//! 2. **no idle while backlogged** — with link-bound flows, the wire is
//!    busy for exactly `total_bytes / bw` seconds and covers every
//!    request's `[arrival, completion]` span;
//! 3. **round-robin fairness** — continuously backlogged flows' delivered
//!    bytes never diverge by more than one quantum;
//! 4. **monotonicity** — adding a flow (a tenant's worth of traffic)
//!    never completes an existing transfer earlier.

use cdma_vdnn::timeline::{LinkArbiter, LinkPolicy, RequestId};

/// Deterministic LCG in [0, 1).
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % 1_000_000) as f64 / 1_000_000.0
}

const BW: f64 = 100.0;

/// One random workload: per flow, FIFO-ordered `(arrival, bytes,
/// max_rate)` triples. `capped` draws engine-bound rate caps; otherwise
/// every transfer is link-bound.
fn workload(seed: &mut u64, flows: usize, capped: bool) -> Vec<Vec<(f64, f64, f64)>> {
    (0..flows)
        .map(|_| {
            let n = 1 + (lcg(seed) * 3.0) as usize;
            let mut at = lcg(seed) * 4.0;
            (0..n)
                .map(|_| {
                    at += lcg(seed) * 3.0;
                    let bytes = 1.0 + lcg(seed) * 400.0;
                    let cap = if capped && lcg(seed) < 0.5 {
                        BW * (0.05 + lcg(seed) * 1.5)
                    } else {
                        f64::INFINITY
                    };
                    (at, bytes, cap)
                })
                .collect()
        })
        .collect()
}

/// Runs a workload to completion; returns per-request completion times,
/// flow-major.
fn run(arb: &mut LinkArbiter, load: &[Vec<(f64, f64, f64)>]) -> Vec<Vec<(RequestId, f64)>> {
    let flows: Vec<_> = (0..load.len())
        .map(|i| arb.flow(&format!("flow{i}")))
        .collect();
    let mut reqs: Vec<Vec<RequestId>> = Vec::new();
    for (f, items) in flows.iter().zip(load) {
        reqs.push(
            items
                .iter()
                .map(|&(at, bytes, cap)| arb.submit(*f, at, bytes, cap))
                .collect(),
        );
    }
    arb.run_until_idle();
    reqs.into_iter()
        .map(|rs| {
            rs.into_iter()
                .map(|r| (r, arb.completion(r).expect("drained link completes all")))
                .collect()
        })
        .collect()
}

#[test]
fn bytes_are_conserved_under_both_policies() {
    let mut seed = 0xB17E5;
    for round in 0..150 {
        for policy in LinkPolicy::ALL {
            let load = workload(&mut seed, 2 + round % 4, true);
            let mut arb = LinkArbiter::with_quantum(BW, policy, 64.0);
            let flows: Vec<_> = (0..load.len())
                .map(|i| arb.flow(&format!("flow{i}")))
                .collect();
            for (f, items) in flows.iter().zip(&load) {
                for &(at, bytes, cap) in items {
                    arb.submit(*f, at, bytes, cap);
                }
            }
            arb.run_until_idle();
            assert!(!arb.has_backlog(), "{policy} round {round}: backlog left");
            for (i, f) in flows.iter().enumerate() {
                let offered: f64 = load[i].iter().map(|&(_, b, _)| b).sum();
                assert!(
                    (arb.delivered(*f) - offered).abs() <= 1e-6 * offered.max(1.0),
                    "{policy} round {round} flow {i}: delivered {} of {} offered",
                    arb.delivered(*f),
                    offered
                );
                assert!((arb.offered(*f) - offered).abs() < 1e-12);
            }
            // Busy intervals are sorted and disjoint.
            let mut prev = f64::NEG_INFINITY;
            for &(s, e) in arb.busy() {
                assert!(e > s && s >= prev - 1e-12, "{policy}: busy list corrupt");
                prev = e;
            }
        }
    }
}

#[test]
fn link_never_idles_while_backlogged() {
    let mut seed = 0x1D1E;
    for round in 0..150 {
        for policy in LinkPolicy::ALL {
            // Link-bound flows only: with a rate cap the wire legitimately
            // idles (the engine cannot feed it), so work conservation is
            // asserted on uncapped workloads.
            let load = workload(&mut seed, 2 + round % 3, false);
            let mut arb = LinkArbiter::with_quantum(BW, policy, 64.0);
            let completions = run(&mut arb, &load);
            let total: f64 = load.iter().flatten().map(|&(_, b, _)| b).sum();
            let busy: f64 = arb.busy().iter().map(|&(s, e)| e - s).sum();
            assert!(
                (busy - total / BW).abs() <= 1e-6 * (total / BW),
                "{policy} round {round}: busy {busy}s for {total} bytes at {BW} B/s"
            );
            // Every request's in-flight span is covered by busy time: a
            // backlogged request never watches an idle wire.
            for (items, comps) in load.iter().zip(&completions) {
                for (&(at, _, _), &(_, done)) in items.iter().zip(comps) {
                    let covered: f64 = arb
                        .busy()
                        .iter()
                        .map(|&(s, e)| (e.min(done) - s.max(at)).max(0.0))
                        .sum();
                    assert!(
                        (covered - (done - at)).abs() <= 1e-6 * (done - at).max(1e-9),
                        "{policy} round {round}: idle wire inside [{at}, {done}]"
                    );
                }
            }
        }
    }
}

#[test]
fn round_robin_fairness_is_bounded_by_one_quantum() {
    let mut seed = 0xFA1;
    let quantum = 32.0;
    for round in 0..200 {
        let flows = 2 + round % 3;
        // One big transfer per flow, all arriving at t=0: continuously
        // backlogged until each completes.
        let sizes: Vec<f64> = (0..flows).map(|_| 400.0 + lcg(&mut seed) * 800.0).collect();
        let mut arb = LinkArbiter::with_quantum(BW, LinkPolicy::RoundRobin, quantum);
        let ids: Vec<_> = (0..flows).map(|i| arb.flow(&format!("f{i}"))).collect();
        let reqs: Vec<_> = ids
            .iter()
            .zip(&sizes)
            .map(|(f, &b)| arb.submit(*f, 0.0, b, f64::INFINITY))
            .collect();
        // Probe delivered counters at random instants.
        let mut t = 0.0;
        for _ in 0..6 {
            t += lcg(&mut seed) * 3.0;
            arb.advance_to(t);
            for i in 0..flows {
                for j in (i + 1)..flows {
                    let both_backlogged = arb.completion(reqs[i]).is_none_or(|c| c > t)
                        && arb.completion(reqs[j]).is_none_or(|c| c > t);
                    if both_backlogged {
                        let diff = (arb.delivered(ids[i]) - arb.delivered(ids[j])).abs();
                        assert!(
                            diff <= quantum + 1e-9,
                            "round {round}: flows {i},{j} diverged by {diff} > quantum at t={t}"
                        );
                    }
                }
            }
        }
        arb.run_until_idle();
        for (req, &size) in reqs.iter().zip(&sizes) {
            assert!(arb.completion(*req).expect("drained") >= size / BW - 1e-9);
        }
    }
}

#[test]
fn adding_a_tenant_never_speeds_up_an_existing_one() {
    let quantum = 64.0;
    let mut seed = 0x7E4A47;
    for round in 0..150 {
        for policy in LinkPolicy::ALL {
            let flows = 2 + round % 3;
            // Fluid fair sharing is strictly monotone: a new flow only
            // lowers the water level, so every rate drops and every
            // completion moves later (or stays). Quantum round-robin has
            // bounded scheduling anomalies instead — a new flow can
            // re-phase the service cursor, handing an existing flow its
            // turn up to a rotation earlier each time it re-enters the
            // backlog — so its bound is a few quanta, not zero.
            let (capped, slack) = match policy {
                LinkPolicy::BandwidthShare => (true, 1e-9),
                LinkPolicy::RoundRobin => (false, 4.0 * (flows + 1) as f64 * quantum / BW),
            };
            let base_load = workload(&mut seed, flows, capped);
            let extra = workload(&mut seed, 1, capped);

            let mut base = LinkArbiter::with_quantum(BW, policy, quantum);
            let base_done = run(&mut base, &base_load);

            let mut contended_load = base_load.clone();
            contended_load.extend(extra);
            let mut contended = LinkArbiter::with_quantum(BW, policy, quantum);
            let contended_done = run(&mut contended, &contended_load);

            for (f, (b, c)) in base_done.iter().zip(&contended_done).enumerate() {
                for ((_, tb), (_, tc)) in b.iter().zip(c) {
                    assert!(
                        *tc >= *tb - slack,
                        "{policy} round {round} flow {f}: completion moved \
                         earlier under contention ({tc} < {tb} - {slack})"
                    );
                }
            }
        }
    }
}
