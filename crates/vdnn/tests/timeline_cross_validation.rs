//! Cross-validation of the event-driven timeline against the legacy
//! closed-form `StepSim` arithmetic, plus seeded property loops over the
//! timeline's structural invariants.
//!
//! `StepSim` itself is now a wrapper over the timeline, so the closed-form
//! per-layer `max(compute, offload)` formula it used to implement is
//! reproduced *independently* here and compared against the timeline on
//! every network in the zoo — the acceptance bar is agreement within 1e-9
//! on every field of the breakdown.

use cdma_gpusim::SystemConfig;
use cdma_models::{zoo, NetworkSpec};
use cdma_vdnn::timeline::{MeasuredStream, Resource, TimelineSim, UniformRatio};
use cdma_vdnn::{ComputeModel, CudnnVersion, StepBreakdown, StepSim, TransferPolicy};

/// Independent reimplementation of the legacy closed-form step model
/// (verbatim the arithmetic `StepSim::step_time` shipped before the
/// timeline refactor).
fn legacy_step_time(
    cfg: &SystemConfig,
    compute: &ComputeModel,
    spec: &NetworkSpec,
    policy: &TransferPolicy,
) -> StepBreakdown {
    let batch = spec.batch();
    let layers = spec.layers();
    let (offload_all, ratios): (bool, Option<&[f64]>) = match policy {
        TransferPolicy::Oracle => (true, None),
        TransferPolicy::OffloadAll(r) => (true, Some(r)),
        TransferPolicy::OffloadConv(r) => (false, Some(r)),
    };

    let transfer_time = |i: usize| -> f64 {
        let Some(r) = ratios else { return 0.0 };
        let layer = &layers[i];
        if !offload_all && !layer.is_conv() {
            return 0.0;
        }
        let bytes = layer.activation_bytes(batch) as f64;
        bytes / cfg.effective_offload_bw(r[i])
    };

    let mut forward = 0.0;
    let mut forward_stall = 0.0;
    for (i, layer) in layers.iter().enumerate() {
        let c = compute.forward_time(layer, batch);
        let offload = if i == 0 {
            if ratios.is_some() {
                let input_bytes = (spec.input().per_image() * batch * 4) as f64;
                input_bytes / cfg.effective_offload_bw(1.0)
            } else {
                0.0
            }
        } else {
            transfer_time(i - 1)
        };
        forward += c.max(offload);
        forward_stall += (offload - c).max(0.0);
    }

    let mut backward = 0.0;
    let mut backward_stall = 0.0;
    if !layers.is_empty() {
        let serial_head = transfer_time(layers.len().saturating_sub(2));
        backward += serial_head;
        backward_stall += serial_head;
        for (i, layer) in layers.iter().enumerate().rev() {
            let c = compute.backward_time(layer, batch);
            let prefetch = if i >= 2 { transfer_time(i - 2) } else { 0.0 };
            backward += c.max(prefetch);
            backward_stall += (prefetch - c).max(0.0);
        }
    }

    StepBreakdown {
        forward,
        backward,
        forward_stall,
        backward_stall,
    }
}

fn assert_matches(a: &StepBreakdown, b: &StepBreakdown, what: &str) {
    for (x, y, field) in [
        (a.forward, b.forward, "forward"),
        (a.backward, b.backward, "backward"),
        (a.forward_stall, b.forward_stall, "forward_stall"),
        (a.backward_stall, b.backward_stall, "backward_stall"),
    ] {
        assert!(
            (x - y).abs() <= 1e-9,
            "{what}: {field} diverged ({x} vs {y})"
        );
    }
}

/// Deterministic LCG for seeded property loops.
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % 1_000_000) as f64 / 1_000_000.0
}

#[test]
fn uniform_ratio_matches_legacy_on_every_zoo_network() {
    let cfg = SystemConfig::titan_x_pcie3();
    for version in CudnnVersion::ALL {
        let model = ComputeModel::titan_x(version);
        let sim = StepSim::new(cfg, model);
        for spec in zoo::all_networks() {
            let policies = [
                TransferPolicy::Oracle,
                TransferPolicy::uniform(&spec, 1.0),
                TransferPolicy::uniform(&spec, 2.6),
                TransferPolicy::uniform(&spec, 1000.0),
                TransferPolicy::OffloadConv(vec![1.0; spec.layers().len()]),
            ];
            for policy in policies {
                let timeline = sim.step_time(&spec, policy.clone());
                let legacy = legacy_step_time(&cfg, &model, &spec, &policy);
                assert_matches(
                    &timeline,
                    &legacy,
                    &format!("{} / {} / {:?}", spec.name(), version.label(), policy),
                );
            }
        }
    }
}

#[test]
fn seeded_per_layer_ratios_match_legacy() {
    let cfg = SystemConfig::titan_x_pcie3();
    let model = ComputeModel::titan_x(CudnnVersion::V5);
    let sim = StepSim::new(cfg, model);
    let mut seed = 0x5EED;
    for round in 0..25 {
        for spec in zoo::all_networks() {
            let ratios: Vec<f64> = spec
                .layers()
                .iter()
                .map(|_| 0.5 + 15.5 * lcg(&mut seed))
                .collect();
            for policy in [
                TransferPolicy::OffloadAll(ratios.clone()),
                TransferPolicy::OffloadConv(ratios.clone()),
            ] {
                let timeline = sim.step_time(&spec, policy.clone());
                let legacy = legacy_step_time(&cfg, &model, &spec, &policy);
                assert_matches(
                    &timeline,
                    &legacy,
                    &format!("round {round} / {}", spec.name()),
                );
            }
        }
    }
}

/// Structural invariants of the timeline itself, across fidelity levels
/// and seeds: resources are never double-booked, and the stall accounting
/// closes exactly against pure compute time.
#[test]
fn seeded_timeline_invariants() {
    let cfg = SystemConfig::titan_x_pcie3();
    let model = ComputeModel::titan_x(CudnnVersion::V5);
    let sim = TimelineSim::new(cfg, model);
    let mut seed = 0xCAFE;
    for spec in zoo::all_networks() {
        let compute_total = model.step_compute_time(&spec);
        for round in 0..8 {
            // Alternate analytic per-layer ratios and synthetic measured
            // line tables.
            let tl = if round % 2 == 0 {
                let ratios: Vec<f64> = spec
                    .layers()
                    .iter()
                    .map(|_| 0.5 + 15.5 * lcg(&mut seed))
                    .collect();
                sim.simulate(
                    &spec,
                    &UniformRatio::new(&spec, TransferPolicy::OffloadAll(ratios)),
                )
            } else {
                let mut table_for = |bytes: u64| -> Vec<(u32, u32)> {
                    (0..bytes.div_ceil(4096))
                        .map(|_| (4096u32, 64 + (lcg(&mut seed) * 4032.0) as u32))
                        .collect()
                };
                let input_bytes = (spec.input().per_image() * spec.batch() * 4) as u64;
                // Cap the synthetic tables so the loop stays fast: scale
                // line counts down for the big networks.
                let scale = 64u64;
                let stream = MeasuredStream::new(
                    table_for(input_bytes / scale),
                    spec.layers()
                        .iter()
                        .map(|l| table_for(l.activation_bytes(spec.batch()) / scale))
                        .collect(),
                );
                sim.simulate(&spec, &stream)
            };

            // 1. No resource is ever busy with two things at once.
            for r in [Resource::Compute, Resource::DmaRead, Resource::Link] {
                let mut prev_end = f64::NEG_INFINITY;
                for &(s, e) in tl.busy(r) {
                    assert!(e > s, "{}: empty busy interval", spec.name());
                    assert!(
                        s >= prev_end - 1e-12,
                        "{}: {r:?} double-booked ({s} < {prev_end})",
                        spec.name()
                    );
                    prev_end = e;
                }
            }

            // 2. Stalls sum to total minus pure compute.
            let stalls = tl.breakdown.forward_stall + tl.breakdown.backward_stall;
            assert!(
                ((tl.total() - stalls) - compute_total).abs() / compute_total < 1e-9,
                "{}: stall accounting does not close ({} - {} != {})",
                spec.name(),
                tl.total(),
                stalls,
                compute_total
            );

            // 3. The event log is chronological and balanced.
            let mut prev = 0.0;
            for e in tl.events() {
                assert!(e.time >= prev, "{}: event log out of order", spec.name());
                prev = e.time;
            }
            assert_eq!(tl.events().len() % 2, 0, "start/end events pair up");

            // 4. Stage records tile the step.
            let last = tl.stages().last().expect("stages");
            assert!((last.end - tl.total()).abs() / tl.total() < 1e-9);
        }
    }
}
