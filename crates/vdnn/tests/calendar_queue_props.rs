//! Seeded property suite driving [`CalendarQueue`] against a retained
//! `BinaryHeap` oracle — the exact priority queue the simulators used
//! before the calendar refactor. The queue's contract is *bit-exact
//! order equivalence*: minimum `(time, seq)` with [`f64::total_cmp`]
//! times and insertion-sequence tie-breaks, under arbitrary interleaved
//! pushes and pops. ≥1000 random interleavings across the properties,
//! plus adversarial deterministic cases:
//!
//! 1. **random interleavings** — several hundred seeded trials of mixed
//!    push/pop traffic (clustered times, heavy ties, occasional past
//!    inserts) pop in exactly the oracle's order;
//! 2. **tie storms** — batches of equal-time events pop in insertion
//!    order (the synchronized stage-boundary shape of a 1000-GPU step);
//! 3. **bucket boundaries** — times sitting exactly on multiples of the
//!    bucket width, straddling adjacent buckets, and denormal-scale gaps
//!    below any sane width;
//! 4. **far future and non-finite** — events many "years" beyond the
//!    calendar (wrapping the bucket array arbitrarily often) and `±∞`
//!    order correctly with everything else.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cdma_vdnn::calendar::CalendarQueue;

/// Heap entry replicating the pre-refactor simulators' ordering: min by
/// `(time, seq)` via `total_cmp`, inverted for `BinaryHeap`'s max-heap.
#[derive(Debug, PartialEq)]
struct OracleEntry {
    time: f64,
    seq: u64,
}

impl Eq for OracleEntry {}

impl PartialOrd for OracleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OracleEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The retained `BinaryHeap` oracle, assigning the same monotone
/// sequence numbers the calendar assigns.
#[derive(Default)]
struct Oracle {
    heap: BinaryHeap<OracleEntry>,
    seq: u64,
}

impl Oracle {
    fn push(&mut self, time: f64) {
        self.heap.push(OracleEntry {
            time,
            seq: self.seq,
        });
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        self.heap.pop().map(|e| (e.time, e.seq))
    }

    fn min_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// Deterministic LCG in [0, 1).
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % 1_000_000) as f64 / 1_000_000.0
}

/// Drains both queues, asserting every pop matches `(time, seq)` by bit
/// pattern.
fn drain_identically(q: &mut CalendarQueue<u64>, oracle: &mut Oracle, what: &str) {
    loop {
        assert_eq!(
            q.min_time().map(f64::to_bits),
            oracle.min_time().map(f64::to_bits),
            "{what}: min_time diverged"
        );
        match (q.pop(), oracle.pop()) {
            (None, None) => break,
            (a, b) => {
                let (at, aseq) = a.unwrap_or_else(|| panic!("{what}: calendar empty, oracle not"));
                let (bt, bseq) = b.unwrap_or_else(|| panic!("{what}: oracle empty, calendar not"));
                assert_eq!(at.to_bits(), bt.to_bits(), "{what}: time {at} vs {bt}");
                assert_eq!(aseq, bseq, "{what}: seq at t={at}");
            }
        }
    }
    assert!(q.is_empty(), "{what}: calendar not empty after drain");
}

#[test]
fn random_interleavings_match_the_heap_oracle() {
    // 600 seeded trials × (pushes + interleaved pops): every pop — and
    // every min_time peek — agrees with the heap, including ties.
    for trial in 0..600u64 {
        let mut seed = 0x5EED ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut q = CalendarQueue::new();
        let mut oracle = Oracle::default();
        let ops = 20 + (lcg(&mut seed) * 180.0) as usize;
        // Clustered times: a handful of "instants" most events share,
        // so ties are the common case, as in a synchronized step.
        let instants: Vec<f64> = (0..4 + (lcg(&mut seed) * 4.0) as usize)
            .map(|_| lcg(&mut seed) * 10.0)
            .collect();
        let mut t_base = 0.0f64;
        for _ in 0..ops {
            let r = lcg(&mut seed);
            if r < 0.6 || q.is_empty() {
                let time = match (lcg(&mut seed) * 4.0) as usize {
                    // An exact repeat of a shared instant (a tie).
                    0 | 1 => instants[(lcg(&mut seed) * instants.len() as f64) as usize],
                    // Monotone progress.
                    2 => {
                        t_base += lcg(&mut seed) * 0.5;
                        t_base
                    }
                    // A past insert: earlier than anything recent.
                    _ => lcg(&mut seed) * 0.1,
                };
                q.push(time, q.pushed());
                oracle.push(time);
            } else {
                let (at, aseq) = q.pop().expect("non-empty");
                let (bt, bseq) = oracle.pop().expect("oracle tracks the calendar");
                assert_eq!(at.to_bits(), bt.to_bits(), "trial {trial}: pop time");
                assert_eq!(aseq, bseq, "trial {trial}: pop seq at t={at}");
            }
        }
        drain_identically(&mut q, &mut oracle, &format!("trial {trial}"));
    }
}

#[test]
fn tie_storms_pop_in_insertion_order() {
    // Batches of identical times — growing past several resizes — drain
    // strictly in sequence order, interleaved across two instants.
    let mut q = CalendarQueue::new();
    let mut oracle = Oracle::default();
    for i in 0..2000u64 {
        let t = if i % 2 == 0 { 1.25 } else { 3.75 };
        q.push(t, i);
        oracle.push(t);
    }
    drain_identically(&mut q, &mut oracle, "tie storm");
}

#[test]
fn bucket_boundary_times_order_correctly() {
    // Times on exact multiples of the initial width (1.0), epsilon
    // below/above them, and sub-width gaps: adjacent-bucket straddles
    // must not reorder.
    let mut q = CalendarQueue::new();
    let mut oracle = Oracle::default();
    let mut times = Vec::new();
    for k in 0..20 {
        let t = k as f64;
        times.extend([
            t,
            t - f64::EPSILON * t.abs().max(1.0),
            t + f64::EPSILON * t.abs().max(1.0),
            t + 0.5,
            t + 1e-300, // denormal-scale gap, far below any bucket width
        ]);
    }
    // Interleave from both ends so pushes are far from sorted.
    let n = times.len();
    for i in 0..n {
        let t = if i % 2 == 0 {
            times[i / 2]
        } else {
            times[n - 1 - i / 2]
        };
        q.push(t, q.pushed());
        oracle.push(t);
    }
    drain_identically(&mut q, &mut oracle, "bucket boundaries");
}

#[test]
fn far_future_and_non_finite_times_order_correctly() {
    // Events 1e0 .. 1e300 apart wrap the bucket array arbitrarily many
    // "years"; ±∞ saturate; and near-term traffic pushed afterwards
    // still pops first.
    let mut q = CalendarQueue::new();
    let mut oracle = Oracle::default();
    for exp in 0..=300 {
        let t = 10f64.powi(exp);
        q.push(t, q.pushed());
        oracle.push(t);
    }
    for t in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1e-9] {
        q.push(t, q.pushed());
        oracle.push(t);
    }
    // Past inserts after far-future ones rewind the scan.
    for i in 0..50u64 {
        let t = i as f64 * 1e-3;
        q.push(t, q.pushed());
        oracle.push(t);
    }
    drain_identically(&mut q, &mut oracle, "far future");
}

#[test]
fn pop_times_are_monotone_under_random_traffic() {
    // Independent of the oracle: pops never go backwards unless a past
    // insert legitimately rewound the minimum, in which case the pop
    // still returns the true minimum (checked against a sorted shadow).
    for trial in 0..400u64 {
        let mut seed = 0xCA1E ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut q = CalendarQueue::new();
        let mut shadow: Vec<(u64, u64)> = Vec::new(); // (time_bits_ordered, seq)
        let mut pushed = 0u64;
        for _ in 0..120 {
            if lcg(&mut seed) < 0.55 || shadow.is_empty() {
                let time = lcg(&mut seed) * 16.0;
                q.push(time, pushed);
                // Order-preserving map of non-negative f64s to u64.
                shadow.push((time.to_bits(), pushed));
                pushed += 1;
            } else {
                let (t, v) = q.pop().expect("shadow says non-empty");
                let min = *shadow.iter().min().expect("shadow says non-empty");
                assert_eq!((t.to_bits(), v), min, "trial {trial}: not the minimum");
                let at = shadow.iter().position(|&e| e == min).expect("present");
                shadow.swap_remove(at);
            }
        }
    }
}
