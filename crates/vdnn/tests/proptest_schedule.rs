//! Property tests of the vDNN timeline simulation: the oracle is a lower
//! bound, compression helps monotonically, and stalls account consistently.

use cdma_gpusim::SystemConfig;
use cdma_models::{PoolFlavor, SpecBuilder};
use cdma_vdnn::{ComputeModel, CudnnVersion, StepSim, TransferPolicy};
use proptest::prelude::*;

/// Random small CNN specs: alternating conv/pool pyramids ending in an fc.
fn random_spec() -> impl Strategy<Value = cdma_models::NetworkSpec> {
    (
        2usize..6,                     // conv stages
        8usize..64,                    // base channels
        32usize..120,                  // input spatial extent
        16usize..128,                  // batch
        proptest::collection::vec(any::<bool>(), 6),
    )
        .prop_map(|(stages, base_c, hw, batch, pools)| {
            let mut b = SpecBuilder::new("random", batch, (3, hw, hw));
            let mut c = base_c;
            for s in 0..stages {
                b.conv(&format!("conv{s}"), c, 3, 1, 1, true);
                if pools[s % pools.len()] && b.current().h >= 4 {
                    b.pool(&format!("pool{s}"), PoolFlavor::Max, 2, 2);
                }
                c = (c * 2).min(256);
            }
            b.fc("fc", 10, false);
            b.build()
        })
}

fn sim() -> StepSim {
    StepSim::new(
        SystemConfig::titan_x_pcie3(),
        ComputeModel::titan_x(CudnnVersion::V5),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle lower-bounds every policy on every network.
    #[test]
    fn oracle_is_a_lower_bound(spec in random_spec(), ratio in 1.0f64..20.0) {
        let s = sim();
        let oracle = s.step_time(&spec, TransferPolicy::Oracle).total();
        let vdnn = s.step_time(&spec, TransferPolicy::uniform(&spec, 1.0)).total();
        let cdma = s.step_time(&spec, TransferPolicy::uniform(&spec, ratio)).total();
        prop_assert!(oracle <= vdnn * 1.000001);
        prop_assert!(oracle <= cdma * 1.000001);
    }

    /// Higher compression ratio never hurts step time.
    #[test]
    fn compression_monotone(spec in random_spec(), r1 in 1.0f64..16.0, r2 in 1.0f64..16.0) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let s = sim();
        let t_lo = s.step_time(&spec, TransferPolicy::uniform(&spec, lo)).total();
        let t_hi = s.step_time(&spec, TransferPolicy::uniform(&spec, hi)).total();
        prop_assert!(t_hi <= t_lo * 1.000001);
    }

    /// Stalls never exceed the phase they occur in, and the step equals
    /// forward + backward.
    #[test]
    fn breakdown_is_consistent(spec in random_spec()) {
        let s = sim();
        let b = s.step_time(&spec, TransferPolicy::uniform(&spec, 1.0));
        prop_assert!(b.forward_stall <= b.forward + 1e-12);
        prop_assert!(b.backward_stall <= b.backward + 1e-12);
        prop_assert!((b.total() - (b.forward + b.backward)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&b.stall_fraction()));
    }

    /// Conv-only offloading is never slower than offload-all at equal
    /// ratios (it strictly transfers a subset).
    #[test]
    fn conv_only_never_slower(spec in random_spec(), ratio in 1.0f64..8.0) {
        let s = sim();
        let n = spec.layers().len();
        let all = s.step_time(&spec, TransferPolicy::OffloadAll(vec![ratio; n])).total();
        let conv = s.step_time(&spec, TransferPolicy::OffloadConv(vec![ratio; n])).total();
        prop_assert!(conv <= all * 1.000001);
    }

    /// Normalized performance is in (0, 1] for transfer policies.
    #[test]
    fn normalized_performance_bounded(spec in random_spec(), ratio in 1.0f64..32.0) {
        let s = sim();
        let p = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, ratio));
        prop_assert!(p > 0.0 && p <= 1.0 + 1e-9, "perf {p}");
    }
}
