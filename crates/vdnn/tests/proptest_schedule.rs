//! Property tests of the vDNN timeline simulation: the oracle is a lower
//! bound, compression helps monotonically, and stalls account consistently.
//!
//! The proptest crate is unavailable offline, so these are deterministic
//! property loops over a seeded generator; every failure reproduces from
//! its case index.

use cdma_gpusim::SystemConfig;
use cdma_models::{PoolFlavor, SpecBuilder};
use cdma_vdnn::{ComputeModel, CudnnVersion, StepSim, TransferPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Random small CNN specs: alternating conv/pool pyramids ending in an fc.
fn random_spec(rng: &mut StdRng) -> cdma_models::NetworkSpec {
    let stages = rng.gen_range(2usize..6);
    let base_c = rng.gen_range(8usize..64);
    let hw = rng.gen_range(32usize..120);
    let batch = rng.gen_range(16usize..128);
    let pools: Vec<bool> = (0..6).map(|_| rng.gen_range(0u32..2) == 1).collect();
    let mut b = SpecBuilder::new("random", batch, (3, hw, hw));
    let mut c = base_c;
    for s in 0..stages {
        b.conv(&format!("conv{s}"), c, 3, 1, 1, true);
        if pools[s % pools.len()] && b.current().h >= 4 {
            b.pool(&format!("pool{s}"), PoolFlavor::Max, 2, 2);
        }
        c = (c * 2).min(256);
    }
    b.fc("fc", 10, false);
    b.build()
}

fn sim() -> StepSim {
    StepSim::new(
        SystemConfig::titan_x_pcie3(),
        ComputeModel::titan_x(CudnnVersion::V5),
    )
}

fn for_each_case(seed: u64, mut check: impl FnMut(u64, &mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ (case.wrapping_mul(0x9E3779B97F4A7C15)));
        check(case, &mut rng);
    }
}

/// The oracle lower-bounds every policy on every network.
#[test]
fn oracle_is_a_lower_bound() {
    for_each_case(0x04AC1E, |case, rng| {
        let spec = random_spec(rng);
        let ratio = rng.gen_range(1.0f64..20.0);
        let s = sim();
        let oracle = s.step_time(&spec, TransferPolicy::Oracle).total();
        let vdnn = s
            .step_time(&spec, TransferPolicy::uniform(&spec, 1.0))
            .total();
        let cdma = s
            .step_time(&spec, TransferPolicy::uniform(&spec, ratio))
            .total();
        assert!(oracle <= vdnn * 1.000001, "case {case}");
        assert!(oracle <= cdma * 1.000001, "case {case}");
    });
}

/// Higher compression ratio never hurts step time.
#[test]
fn compression_monotone() {
    for_each_case(0x4070, |case, rng| {
        let spec = random_spec(rng);
        let r1 = rng.gen_range(1.0f64..16.0);
        let r2 = rng.gen_range(1.0f64..16.0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let s = sim();
        let t_lo = s
            .step_time(&spec, TransferPolicy::uniform(&spec, lo))
            .total();
        let t_hi = s
            .step_time(&spec, TransferPolicy::uniform(&spec, hi))
            .total();
        assert!(t_hi <= t_lo * 1.000001, "case {case}");
    });
}

/// Stalls never exceed the phase they occur in, and the step equals
/// forward + backward.
#[test]
fn breakdown_is_consistent() {
    for_each_case(0xB4EAD, |case, rng| {
        let spec = random_spec(rng);
        let s = sim();
        let b = s.step_time(&spec, TransferPolicy::uniform(&spec, 1.0));
        assert!(b.forward_stall <= b.forward + 1e-12, "case {case}");
        assert!(b.backward_stall <= b.backward + 1e-12, "case {case}");
        assert!(
            (b.total() - (b.forward + b.backward)).abs() < 1e-12,
            "case {case}"
        );
        assert!((0.0..=1.0).contains(&b.stall_fraction()), "case {case}");
    });
}

/// Conv-only offloading is never slower than offload-all at equal
/// ratios (it strictly transfers a subset).
#[test]
fn conv_only_never_slower() {
    for_each_case(0xC04F, |case, rng| {
        let spec = random_spec(rng);
        let ratio = rng.gen_range(1.0f64..8.0);
        let s = sim();
        let n = spec.layers().len();
        let all = s
            .step_time(&spec, TransferPolicy::OffloadAll(vec![ratio; n]))
            .total();
        let conv = s
            .step_time(&spec, TransferPolicy::OffloadConv(vec![ratio; n]))
            .total();
        assert!(conv <= all * 1.000001, "case {case}");
    });
}

/// Normalized performance is in (0, 1] for transfer policies.
#[test]
fn normalized_performance_bounded() {
    for_each_case(0x904B, |case, rng| {
        let spec = random_spec(rng);
        let ratio = rng.gen_range(1.0f64..32.0);
        let s = sim();
        let p = s.normalized_performance(&spec, TransferPolicy::uniform(&spec, ratio));
        assert!(p > 0.0 && p <= 1.0 + 1e-9, "case {case}: perf {p}");
    });
}
