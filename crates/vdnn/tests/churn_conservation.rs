//! Conservation invariants of the tenant-churn driver and the two-tier
//! fabric, over ~1000 seeded random traces:
//!
//! 1. **step conservation** — every job's requested steps are either
//!    completed or cleanly cancelled at departure (none leak, none run
//!    twice); a job that was never admitted completes nothing; an
//!    admitted job without a departure finishes everything it asked for;
//! 2. **busy-interval discipline** — each tier's busy profile is a
//!    sorted, coalesced, non-overlapping interval list within the
//!    makespan, and the streaming [`RunStats`] fold agrees with the
//!    per-step records it folded;
//! 3. **wire-byte conservation across tiers** — every byte the spine
//!    carries entered through exactly one node tier or belongs to a
//!    gradient stream: `spine = Σ node + Σ allreduce` per step.
//!
//! The traces reuse [`churn_trace`]'s seed discipline (the
//! `loadgen::Schedule` per-index splitting), so failures reproduce from
//! the trace seed alone.

use cdma_gpusim::SystemConfig;
use cdma_models::tiny::tiny_alexnet_spec;
use cdma_models::NetworkSpec;
use cdma_vdnn::cluster::{ClusterSim, Tenant};
use cdma_vdnn::fabric::{churn_trace, FabricSim, FabricSpec, Job};
use cdma_vdnn::timeline::{FidelitySource, LinkPolicy, UniformRatio};
use cdma_vdnn::{ComputeModel, CudnnVersion};

/// Asserts `intervals` is sorted, positive-length-or-empty, pairwise
/// disjoint, and inside `[0, makespan]`.
fn assert_disjoint(intervals: &[(f64, f64)], makespan: f64, what: &str) {
    let mut prev_end = 0.0f64;
    for (i, &(s, e)) in intervals.iter().enumerate() {
        assert!(s <= e, "{what}: interval {i} inverted ({s} > {e})");
        assert!(
            s >= prev_end - 1e-12,
            "{what}: interval {i} overlaps its predecessor ({s} < {prev_end})"
        );
        assert!(
            e <= makespan + 1e-9 * makespan.abs().max(1.0),
            "{what}: interval {i} ends past the makespan ({e} > {makespan})"
        );
        prev_end = e;
    }
}

fn cluster(nodes: usize, gpus_per_node: usize) -> ClusterSim {
    let cfg = SystemConfig::titan_x_pcie3();
    ClusterSim::new(
        cfg,
        ComputeModel::titan_x(CudnnVersion::V5),
        LinkPolicy::BandwidthShare,
    )
    .with_fabric(FabricSpec::new(
        nodes,
        gpus_per_node,
        cfg.pcie_bw,
        LinkPolicy::BandwidthShare,
        cfg.pcie_bw * (nodes as f64 / 2.0).max(1.0),
        LinkPolicy::BandwidthShare,
    ))
}

#[test]
fn seeded_churn_traces_conserve_steps_and_spine_discipline() {
    // 700 random traces on a 2×2 fabric: small trainable specs keep each
    // trace to a handful of steps, so the suite stays fast while the
    // admission, departure and cancellation paths all get exercised.
    let specs = [tiny_alexnet_spec(8, 4), tiny_alexnet_spec(4, 8)];
    let checkpoints: Vec<Vec<FidelitySource>> = specs
        .iter()
        .map(|s| {
            vec![
                FidelitySource::Uniform(UniformRatio::uniform(s, 1.4)),
                FidelitySource::Uniform(UniformRatio::uniform(s, 3.0)),
            ]
        })
        .collect();
    let sim = FabricSim::new(cluster(2, 2));
    let (mut jobs_seen, mut departures_seen, mut queued_rejections) = (0u64, 0u64, 0u64);
    for seed in 0..700u64 {
        // Horizon on the scale of a simulated step (tens of µs for the
        // tiny specs), so departures actually land mid-run.
        let trace = churn_trace(seed, 2e-4, 5e-5, specs.len(), 4);
        if trace.is_empty() {
            continue;
        }
        let jobs: Vec<Job<'_>> = trace
            .iter()
            .map(|t| Job {
                spec: &specs[t.network],
                gpus: t.gpus,
                arrival: t.arrival,
                steps: t.steps,
                departure: t.departure,
                checkpoints: &checkpoints[t.network],
            })
            .collect();
        let run = sim.run(&jobs);

        assert_eq!(run.jobs.len(), jobs.len(), "seed {seed}: outcome per job");
        for (o, j) in run.jobs.iter().zip(&jobs) {
            jobs_seen += 1;
            let what = format!("seed {seed} job {}×{}g", o.network, o.gpus);
            assert_eq!(o.steps_requested, j.steps, "{what}: requested");
            assert_eq!(
                o.steps_completed + o.steps_cancelled,
                o.steps_requested,
                "{what}: steps leaked"
            );
            match o.admitted {
                None => {
                    queued_rejections += 1;
                    assert_eq!(o.steps_completed, 0, "{what}: ran while queued");
                    assert!(o.finished.is_none(), "{what}: finished unadmitted");
                }
                Some(at) => {
                    assert!(at >= o.arrival, "{what}: admitted before arriving");
                    if o.departed.is_none() {
                        assert_eq!(
                            o.steps_completed, o.steps_requested,
                            "{what}: cancelled without departing"
                        );
                        assert!(o.finished.is_some(), "{what}: no finish time");
                    }
                }
            }
            if let Some(dep) = o.departed {
                departures_seen += 1;
                assert!(
                    j.departure.is_some(),
                    "{what}: departed without a departure time"
                );
                assert!(
                    dep >= j.departure.unwrap_or(0.0) - 1e-12,
                    "{what}: left before its departure time"
                );
            }
        }

        assert_disjoint(&run.spine_busy, run.makespan, &format!("seed {seed} spine"));
        assert!(
            run.spine_utilisation() <= 1.0 + 1e-12,
            "seed {seed}: spine over-utilised"
        );
        let folded: u64 = run.steps.iter().map(|s| s.gpus as u64).sum();
        assert_eq!(
            run.stats.gpu_steps, folded,
            "seed {seed}: streaming fold diverged from the step records"
        );
    }
    // The trace distribution must actually exercise the interesting
    // paths, or the invariants above prove nothing.
    assert!(jobs_seen > 1000, "only {jobs_seen} jobs across all traces");
    assert!(departures_seen > 50, "only {departures_seen} departures");
    assert!(
        queued_rejections > 20,
        "only {queued_rejections} rejections"
    );
}

#[test]
fn random_steps_conserve_wire_bytes_across_tiers() {
    // 300 seeded random multi-tenant single steps on random fabric
    // shapes: every spine byte is a node byte or a gradient byte.
    let specs: Vec<NetworkSpec> = vec![tiny_alexnet_spec(8, 4), tiny_alexnet_spec(4, 8)];
    let sources: Vec<UniformRatio> = specs
        .iter()
        .map(|s| UniformRatio::uniform(s, 2.2))
        .collect();
    let mut state = 0x00D1_5EEDu64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for trial in 0..300 {
        let nodes = [1usize, 2, 4][lcg() % 3];
        let gpus_per_node = [2usize, 4][lcg() % 2];
        let capacity = nodes * gpus_per_node;
        let mut free = capacity;
        let mut tenants: Vec<Tenant<'_>> = Vec::new();
        for _ in 0..1 + lcg() % 3 {
            let width = 1 << (lcg() % 3); // 1, 2 or 4 GPUs
            if width > free {
                continue;
            }
            free -= width;
            let which = lcg() % specs.len();
            tenants.push(Tenant {
                spec: &specs[which],
                source: &sources[which],
                gpus: width,
            });
        }
        if tenants.is_empty() {
            continue;
        }
        let tl = cluster(nodes, gpus_per_node).simulate(&tenants);
        let what = format!("trial {trial} ({nodes}×{gpus_per_node})");

        assert_disjoint(tl.link_busy(), tl.makespan(), &format!("{what} spine"));
        assert_eq!(tl.node_busy().len(), nodes, "{what}: tier count");
        for (k, busy) in tl.node_busy().iter().enumerate() {
            assert_disjoint(busy, tl.makespan(), &format!("{what} node {k}"));
        }

        let node_total: f64 = tl.node_wire_bytes().iter().sum();
        let allreduce_total: f64 = tenants
            .iter()
            .filter(|t| t.gpus > 1)
            .map(|t| t.spec.weight_bytes() as f64 * 2.0 * (t.gpus as f64 - 1.0))
            .sum();
        let spine = tl.spine_wire_bytes();
        let expected = node_total + allreduce_total;
        assert!(
            (spine - expected).abs() <= 1e-6 * expected.max(1.0),
            "{what}: spine carried {spine} bytes, node tiers + gradients account for {expected}"
        );
        assert!(
            node_total > 0.0,
            "{what}: offload traffic never reached the node tiers"
        );
    }
}
