use std::error::Error;
use std::fmt;

use crate::Shape4;

/// Error returned when two tensors that must agree in shape do not.
///
/// ```
/// use cdma_tensor::{Layout, Shape4, Tensor};
/// let mut a = Tensor::zeros(Shape4::new(1, 2, 3, 3), Layout::Nchw);
/// let b = Tensor::zeros(Shape4::new(1, 2, 3, 4), Layout::Nchw);
/// assert!(a.checked_copy_from(&b).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// The shape the operation expected.
    pub expected: Shape4,
    /// The shape it was given.
    pub actual: Shape4,
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tensor shape mismatch: expected {}, got {}",
            self.expected, self.actual
        )
    }
}

impl Error for ShapeMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ShapeMismatchError {
            expected: Shape4::new(1, 2, 3, 4),
            actual: Shape4::new(4, 3, 2, 1),
        };
        let msg = err.to_string();
        assert!(msg.contains("(1, 2, 3, 4)"));
        assert!(msg.contains("(4, 3, 2, 1)"));
    }
}
