//! # cdma-tensor — 4-D activation-map tensors for the cDMA reproduction
//!
//! The cDMA paper (Rhu et al., HPCA 2018) studies the compressibility of DNN
//! *activation maps*: 4-dimensional arrays indexed by minibatch image `N`,
//! feature-map channel `C`, and the spatial height `H` and width `W` of each
//! map. The way this 4-D array is linearized in memory (the *layout*) has a
//! first-order effect on the behaviour of run-length and dictionary
//! compressors, so this crate makes the layout an explicit, typed property of
//! every tensor:
//!
//! * [`Layout::Nchw`] — Caffe/cuDNN default (`W` innermost),
//! * [`Layout::Nhwc`] — cuDNN alternative (`C` innermost),
//! * [`Layout::Chwn`] — Neon / cuda-convnet (`N` innermost).
//!
//! [`Tensor`] owns `f32` data in one of those layouts and supports byte-exact
//! relayout ([`Tensor::to_layout`]), element access in logical `(n, c, h, w)`
//! coordinates, and the density/sparsity accounting that the rest of the
//! reproduction is built on.
//!
//! ```
//! use cdma_tensor::{Layout, Shape4, Tensor};
//!
//! let shape = Shape4::new(2, 3, 4, 4);
//! let mut t = Tensor::zeros(shape, Layout::Nchw);
//! t.set(0, 1, 2, 3, 7.5);
//! assert_eq!(t.get(0, 1, 2, 3), 7.5);
//! assert!((t.density() - 1.0 / 96.0).abs() < 1e-9);
//!
//! let u = t.to_layout(Layout::Chwn);
//! assert_eq!(u.get(0, 1, 2, 3), 7.5);
//! ```

#![deny(missing_docs)]

mod error;
mod layout;
mod shape;
mod tensor;
mod view;

pub use error::ShapeMismatchError;
pub use layout::Layout;
pub use shape::Shape4;
pub use tensor::Tensor;
pub use view::ChannelPlane;
