use std::fmt;

use crate::Shape4;

/// Memory layout of a 4-D activation tensor.
///
/// Section II-C of the cDMA paper observes that different ML frameworks
/// linearize the `(N, C, H, W)` activation array differently, and Section
/// VII-A shows that the layout determines how effective run-length and
/// dictionary compression are (zero-value compression is layout-insensitive).
///
/// The variant name lists dimensions from **outermost to innermost**; e.g. in
/// [`Layout::Nchw`] consecutive memory addresses walk `W` fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layout {
    /// `N` outermost, `W` innermost — Caffe's native layout and cuDNN's
    /// default. Zeros produced by a channel going quiet appear as long
    /// contiguous runs (a whole `H·W` plane), which favours RLE and zlib.
    Nchw,
    /// `N` outermost, `C` innermost — cuDNN's alternative layout. Channel
    /// values for one pixel are interleaved, which breaks up zero runs.
    Nhwc,
    /// `C` outermost, `N` innermost — the layout of Neon and cuda-convnet.
    /// Values for the same map position across the minibatch are adjacent.
    Chwn,
}

impl Layout {
    /// All three layouts, in the order the paper's figures enumerate them.
    pub const ALL: [Layout; 3] = [Layout::Nchw, Layout::Nhwc, Layout::Chwn];

    /// Strides (in elements) for each logical dimension `(n, c, h, w)` under
    /// this layout for the given shape.
    ///
    /// ```
    /// use cdma_tensor::{Layout, Shape4};
    /// let s = Shape4::new(2, 3, 4, 5);
    /// let (sn, sc, sh, sw) = Layout::Nchw.strides(s);
    /// assert_eq!((sn, sc, sh, sw), (60, 20, 5, 1));
    /// ```
    pub fn strides(&self, shape: Shape4) -> (usize, usize, usize, usize) {
        let Shape4 { n: _, c, h, w } = shape;
        match self {
            Layout::Nchw => (c * h * w, h * w, w, 1),
            Layout::Nhwc => (h * w * c, 1, w * c, c),
            Layout::Chwn => (1, h * w * shape.n, w * shape.n, shape.n),
        }
    }

    /// Linear element offset of logical coordinate `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Does not bounds-check in release builds; callers are expected to pass
    /// coordinates inside `shape` (the [`crate::Tensor`] accessors do check).
    pub fn offset(&self, shape: Shape4, n: usize, c: usize, h: usize, w: usize) -> usize {
        let (sn, sc, sh, sw) = self.strides(shape);
        n * sn + c * sc + h * sh + w * sw
    }

    /// Inverse of [`Layout::offset`]: maps a linear element offset back to
    /// logical `(n, c, h, w)` coordinates.
    pub fn coords(&self, shape: Shape4, offset: usize) -> (usize, usize, usize, usize) {
        let Shape4 { n, c, h, w } = shape;
        debug_assert!(offset < shape.len());
        match self {
            Layout::Nchw => {
                let wi = offset % w;
                let hi = (offset / w) % h;
                let ci = (offset / (w * h)) % c;
                let ni = offset / (w * h * c);
                (ni, ci, hi, wi)
            }
            Layout::Nhwc => {
                let ci = offset % c;
                let wi = (offset / c) % w;
                let hi = (offset / (c * w)) % h;
                let ni = offset / (c * w * h);
                (ni, ci, hi, wi)
            }
            Layout::Chwn => {
                let ni = offset % n;
                let wi = (offset / n) % w;
                let hi = (offset / (n * w)) % h;
                let ci = offset / (n * w * h);
                (ni, ci, hi, wi)
            }
        }
    }

    /// Short uppercase name as used in the paper's figures (`NCHW`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Nchw => "NCHW",
            Layout::Nhwc => "NHWC",
            Layout::Chwn => "CHWN",
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_strides_walk_w_fastest() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(Layout::Nchw.offset(s, 0, 0, 0, 1), 1);
        assert_eq!(Layout::Nchw.offset(s, 0, 0, 1, 0), 5);
        assert_eq!(Layout::Nchw.offset(s, 0, 1, 0, 0), 20);
        assert_eq!(Layout::Nchw.offset(s, 1, 0, 0, 0), 60);
    }

    #[test]
    fn nhwc_strides_walk_c_fastest() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(Layout::Nhwc.offset(s, 0, 1, 0, 0), 1);
        assert_eq!(Layout::Nhwc.offset(s, 0, 0, 0, 1), 3);
        assert_eq!(Layout::Nhwc.offset(s, 0, 0, 1, 0), 15);
        assert_eq!(Layout::Nhwc.offset(s, 1, 0, 0, 0), 60);
    }

    #[test]
    fn chwn_strides_walk_n_fastest() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(Layout::Chwn.offset(s, 1, 0, 0, 0), 1);
        assert_eq!(Layout::Chwn.offset(s, 0, 0, 0, 1), 2);
        assert_eq!(Layout::Chwn.offset(s, 0, 0, 1, 0), 10);
        assert_eq!(Layout::Chwn.offset(s, 0, 1, 0, 0), 40);
    }

    #[test]
    fn offsets_cover_all_elements_exactly_once() {
        let s = Shape4::new(3, 2, 4, 5);
        for layout in Layout::ALL {
            let mut seen = vec![false; s.len()];
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let off = layout.offset(s, n, c, h, w);
                            assert!(!seen[off], "{layout} maps two coords to offset {off}");
                            seen[off] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&x| x), "{layout} left gaps");
        }
    }

    #[test]
    fn coords_inverts_offset() {
        let s = Shape4::new(3, 2, 4, 5);
        for layout in Layout::ALL {
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let off = layout.offset(s, n, c, h, w);
                            assert_eq!(
                                layout.coords(s, off),
                                (n, c, h, w),
                                "layout {layout} offset {off}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Layout::Nchw.name(), "NCHW");
        assert_eq!(Layout::Nhwc.name(), "NHWC");
        assert_eq!(Layout::Chwn.name(), "CHWN");
        assert_eq!(Layout::ALL.len(), 3);
    }
}
