use crate::Tensor;

/// A borrowed view of a single `(image, channel)` plane of a [`Tensor`].
///
/// Figure 5 of the paper visualizes activation sparsity one channel plane at
/// a time (e.g. AlexNet conv0's 96 channels as an 8×12 grid of 55×55 maps);
/// this view provides the per-plane access those renderings need without
/// copying.
#[derive(Debug, Clone, Copy)]
pub struct ChannelPlane<'a> {
    tensor: &'a Tensor,
    n: usize,
    c: usize,
}

impl<'a> ChannelPlane<'a> {
    pub(crate) fn new(tensor: &'a Tensor, n: usize, c: usize) -> Self {
        let s = tensor.shape();
        assert!(
            n < s.n && c < s.c,
            "plane ({n}, {c}) out of bounds for shape {s}"
        );
        ChannelPlane { tensor, n, c }
    }

    /// Plane height.
    pub fn height(&self) -> usize {
        self.tensor.shape().h
    }

    /// Plane width.
    pub fn width(&self) -> usize {
        self.tensor.shape().w
    }

    /// Element at `(h, w)` within this plane.
    ///
    /// # Panics
    ///
    /// Panics if `(h, w)` is out of bounds.
    pub fn get(&self, h: usize, w: usize) -> f32 {
        self.tensor.get(self.n, self.c, h, w)
    }

    /// Fraction of non-zero elements in this plane.
    pub fn density(&self) -> f64 {
        let mut nonzero = 0usize;
        for h in 0..self.height() {
            for w in 0..self.width() {
                if self.get(h, w) != 0.0 {
                    nonzero += 1;
                }
            }
        }
        nonzero as f64 / (self.height() * self.width()) as f64
    }

    /// Iterates over the plane's values in row-major `(h, w)` order.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        let (h, w) = (self.height(), self.width());
        (0..h).flat_map(move |hi| (0..w).map(move |wi| self.get(hi, wi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layout, Shape4};

    #[test]
    fn plane_reads_the_right_channel() {
        let t = Tensor::from_fn(Shape4::new(2, 3, 2, 2), Layout::Nhwc, |n, c, h, w| {
            (n * 100 + c * 10 + h * 2 + w) as f32
        });
        let p = t.plane(1, 2);
        assert_eq!(p.get(0, 0), 120.0);
        assert_eq!(p.get(1, 1), 123.0);
        assert_eq!(p.height(), 2);
        assert_eq!(p.width(), 2);
    }

    #[test]
    fn plane_density_is_local() {
        let mut t = Tensor::zeros(Shape4::new(1, 2, 2, 2), Layout::Nchw);
        t.set(0, 0, 0, 0, 5.0);
        assert_eq!(t.plane(0, 0).density(), 0.25);
        assert_eq!(t.plane(0, 1).density(), 0.0);
    }

    #[test]
    fn iter_walks_row_major() {
        let t = Tensor::from_fn(Shape4::new(1, 1, 2, 3), Layout::Chwn, |_, _, h, w| {
            (h * 3 + w) as f32
        });
        let vals: Vec<f32> = t.plane(0, 0).iter().collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn plane_bounds_checked() {
        let t = Tensor::zeros(Shape4::new(1, 1, 1, 1), Layout::Nchw);
        let _ = t.plane(0, 1);
    }
}
