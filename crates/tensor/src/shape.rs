use std::fmt;

/// The logical shape of a 4-D activation tensor: `(N, C, H, W)`.
///
/// `N` is the minibatch size, `C` the number of feature-map channels, and
/// `H`/`W` the spatial extent of each map, matching the nomenclature of
/// Section II-C of the cDMA paper.
///
/// ```
/// use cdma_tensor::Shape4;
/// // AlexNet conv0 output for a single image: (96, 55, 55).
/// let s = Shape4::new(1, 96, 55, 55);
/// assert_eq!(s.len(), 96 * 55 * 55);
/// assert_eq!(s.bytes(), s.len() * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Minibatch size.
    pub n: usize,
    /// Feature-map channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a shape from its four extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero; zero-sized activation maps never occur
    /// in the networks under study and would make density undefined.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "all tensor extents must be non-zero, got ({n}, {c}, {h}, {w})"
        );
        Shape4 { n, c, h, w }
    }

    /// Shape of a fully-connected layer output: `C` features per image,
    /// spatially `1×1` (the paper displays fc layers as `(4096, 1, 1)`).
    pub fn fc(n: usize, features: usize) -> Self {
        Shape4::new(n, features, 1, 1)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Returns `true` when the shape holds no elements. Kept for API
    /// completeness; constructors reject empty shapes so this is never
    /// `true` for values built through [`Shape4::new`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements in one image's worth of activations (`C·H·W`).
    pub fn per_image(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of elements in one channel plane (`H·W`).
    pub fn plane(&self) -> usize {
        self.h * self.w
    }

    /// Size in bytes when stored as `f32`, the data type used throughout the
    /// paper's evaluation.
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }

    /// The same shape with a different minibatch size.
    pub fn with_batch(&self, n: usize) -> Self {
        Shape4::new(n, self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.n, self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize, usize)> for Shape4 {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Shape4::new(n, c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_bytes() {
        let s = Shape4::new(2, 3, 5, 7);
        assert_eq!(s.len(), 210);
        assert_eq!(s.bytes(), 840);
        assert_eq!(s.per_image(), 105);
        assert_eq!(s.plane(), 35);
        assert!(!s.is_empty());
    }

    #[test]
    fn fc_shape_is_spatially_unit() {
        let s = Shape4::fc(256, 4096);
        assert_eq!(s, Shape4::new(256, 4096, 1, 1));
        assert_eq!(s.plane(), 1);
    }

    #[test]
    fn with_batch_preserves_chw() {
        let s = Shape4::new(1, 96, 55, 55).with_batch(128);
        assert_eq!(s.n, 128);
        assert_eq!(s.per_image(), 96 * 55 * 55);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_rejected() {
        let _ = Shape4::new(1, 0, 5, 5);
    }

    #[test]
    fn display_and_from_tuple() {
        let s: Shape4 = (1, 2, 3, 4).into();
        assert_eq!(s.to_string(), "(1, 2, 3, 4)");
    }
}
