use crate::{ChannelPlane, Layout, Shape4, ShapeMismatchError};

/// An owned 4-D `f32` activation tensor with an explicit memory [`Layout`].
///
/// This is the unit of data the cDMA engine offloads: one layer's output
/// activation maps for a whole minibatch. All logical accessors take
/// `(n, c, h, w)` coordinates regardless of layout, so algorithmic code is
/// layout-agnostic while the raw byte stream handed to the compressors is
/// exactly what a GPU in that layout would DMA.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    layout: Layout,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape4, layout: Layout) -> Self {
        Tensor {
            shape,
            layout,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape4, layout: Layout, value: f32) -> Self {
        Tensor {
            shape,
            layout,
            data: vec![value; shape.len()],
        }
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` for every element.
    ///
    /// ```
    /// use cdma_tensor::{Layout, Shape4, Tensor};
    /// let t = Tensor::from_fn(Shape4::new(1, 1, 2, 2), Layout::Nchw, |_, _, h, w| {
    ///     (h * 2 + w) as f32
    /// });
    /// assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    /// ```
    pub fn from_fn<F>(shape: Shape4, layout: Layout, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut t = Tensor::zeros(shape, layout);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        let off = layout.offset(shape, n, c, h, w);
                        t.data[off] = f(n, c, h, w);
                    }
                }
            }
        }
        t
    }

    /// Wraps an existing linear buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, layout: Layout, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor {
            shape,
            layout,
            data,
        }
    }

    /// The logical shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// The memory layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for tensors built
    /// from a valid [`Shape4`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the raw data in bytes — the amount of PCIe traffic offloading
    /// this tensor uncompressed would generate.
    pub fn bytes(&self) -> usize {
        self.shape.bytes()
    }

    /// Reads the element at logical coordinate `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.bounds_check(n, c, h, w);
        self.data[self.layout.offset(self.shape, n, c, h, w)]
    }

    /// Writes the element at logical coordinate `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        self.bounds_check(n, c, h, w);
        let off = self.layout.offset(self.shape, n, c, h, w);
        self.data[off] = value;
    }

    fn bounds_check(&self, n: usize, c: usize, h: usize, w: usize) {
        let s = self.shape;
        assert!(
            n < s.n && c < s.c && h < s.h && w < s.w,
            "coordinate ({n}, {c}, {h}, {w}) out of bounds for shape {s}"
        );
    }

    /// The raw linear data in this tensor's layout. This is the exact byte
    /// stream the DMA engine sees.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw linear data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The raw data reinterpreted as bytes (little-endian `f32`s), i.e. what
    /// travels over PCIe.
    pub fn as_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Produces a new tensor with identical logical contents in a different
    /// layout. Returns a clone when the layout already matches.
    pub fn to_layout(&self, layout: Layout) -> Tensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor::zeros(self.shape, layout);
        for (src_off, &v) in self.data.iter().enumerate() {
            let (n, c, h, w) = self.layout.coords(self.shape, src_off);
            let dst_off = layout.offset(self.shape, n, c, h, w);
            out.data[dst_off] = v;
        }
        out
    }

    /// Copies data from `src`, which must have the same shape (layouts may
    /// differ; data is transposed as needed).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] when the shapes differ.
    pub fn checked_copy_from(&mut self, src: &Tensor) -> Result<(), ShapeMismatchError> {
        if src.shape != self.shape {
            return Err(ShapeMismatchError {
                expected: self.shape,
                actual: src.shape,
            });
        }
        if src.layout == self.layout {
            self.data.copy_from_slice(&src.data);
        } else {
            let converted = src.to_layout(self.layout);
            self.data.copy_from_slice(&converted.data);
        }
        Ok(())
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Activation density: non-zero elements divided by total elements
    /// (`AVGdensity` in Section IV of the paper). Sparsity is `1 - density`.
    pub fn density(&self) -> f64 {
        self.count_nonzero() as f64 / self.len() as f64
    }

    /// Applies ReLU in place (thresholds negatives to zero) — the operation
    /// that creates the sparsity cDMA exploits.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// A borrowed view of one `(n, c)` channel plane, used by the Fig. 5
    /// visualizations.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` is out of bounds.
    pub fn plane(&self, n: usize, c: usize) -> ChannelPlane<'_> {
        ChannelPlane::new(self, n, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(layout: Layout) -> Tensor {
        Tensor::from_fn(Shape4::new(2, 3, 4, 5), layout, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        })
    }

    #[test]
    fn get_set_roundtrip_all_layouts() {
        for layout in Layout::ALL {
            let mut t = Tensor::zeros(Shape4::new(2, 3, 4, 5), layout);
            t.set(1, 2, 3, 4, 42.0);
            assert_eq!(t.get(1, 2, 3, 4), 42.0);
            assert_eq!(t.count_nonzero(), 1);
        }
    }

    #[test]
    fn from_fn_matches_get() {
        for layout in Layout::ALL {
            let t = sample(layout);
            assert_eq!(t.get(1, 2, 3, 4), 1234.0);
            assert_eq!(t.get(0, 0, 0, 0), 0.0);
        }
    }

    #[test]
    fn to_layout_preserves_logical_contents() {
        let t = sample(Layout::Nchw);
        for layout in Layout::ALL {
            let u = t.to_layout(layout);
            assert_eq!(u.layout(), layout);
            for n in 0..2 {
                for c in 0..3 {
                    for h in 0..4 {
                        for w in 0..5 {
                            assert_eq!(t.get(n, c, h, w), u.get(n, c, h, w));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn to_layout_changes_byte_order() {
        let t = sample(Layout::Nchw);
        let u = t.to_layout(Layout::Nhwc);
        assert_ne!(t.as_slice(), u.as_slice());
        assert_eq!(t.as_slice(), u.to_layout(Layout::Nchw).as_slice());
    }

    #[test]
    fn density_counts_zeros() {
        let mut t = Tensor::full(Shape4::new(1, 1, 2, 5), Layout::Nchw, 1.0);
        assert_eq!(t.density(), 1.0);
        for w in 0..5 {
            t.set(0, 0, 0, w, 0.0);
        }
        assert_eq!(t.density(), 0.5);
    }

    #[test]
    fn relu_thresholds_negatives() {
        let mut t = Tensor::from_vec(
            Shape4::new(1, 1, 1, 4),
            Layout::Nchw,
            vec![-1.0, 2.0, -3.0, 0.5],
        );
        t.relu_in_place();
        assert_eq!(t.as_slice(), &[0.0, 2.0, 0.0, 0.5]);
    }

    #[test]
    fn checked_copy_from_converts_layout() {
        let src = sample(Layout::Nhwc);
        let mut dst = Tensor::zeros(src.shape(), Layout::Nchw);
        dst.checked_copy_from(&src).unwrap();
        assert_eq!(dst.get(1, 2, 3, 4), 1234.0);
    }

    #[test]
    fn checked_copy_from_rejects_mismatch() {
        let src = Tensor::zeros(Shape4::new(1, 1, 1, 2), Layout::Nchw);
        let mut dst = Tensor::zeros(Shape4::new(1, 1, 2, 1), Layout::Nchw);
        let err = dst.checked_copy_from(&src).unwrap_err();
        assert_eq!(err.actual, src.shape());
    }

    #[test]
    fn as_bytes_is_little_endian_f32() {
        let t = Tensor::from_vec(Shape4::new(1, 1, 1, 1), Layout::Nchw, vec![1.0]);
        assert_eq!(t.as_bytes(), 1.0f32.to_le_bytes().to_vec());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = Tensor::zeros(Shape4::new(1, 1, 1, 1), Layout::Nchw);
        let _ = t.get(0, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 1, 3), Layout::Nchw, vec![0.0; 2]);
    }
}
