//! Property-based tests for layout arithmetic and relayout round-trips.

use cdma_tensor::{Layout, Shape4, Tensor};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Shape4> {
    (1usize..5, 1usize..6, 1usize..7, 1usize..7).prop_map(|(n, c, h, w)| Shape4::new(n, c, h, w))
}

fn layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::Nchw),
        Just(Layout::Nhwc),
        Just(Layout::Chwn)
    ]
}

proptest! {
    /// `coords` is the inverse of `offset` for every layout and shape.
    #[test]
    fn offset_coords_roundtrip(shape in small_shape(), l in layout(), seed in 0usize..10_000) {
        let off = seed % shape.len();
        let (n, c, h, w) = l.coords(shape, off);
        prop_assert!(n < shape.n && c < shape.c && h < shape.h && w < shape.w);
        prop_assert_eq!(l.offset(shape, n, c, h, w), off);
    }

    /// Relayout in any direction preserves every logical element.
    #[test]
    fn relayout_roundtrip(shape in small_shape(), a in layout(), b in layout(), seed in any::<u64>()) {
        // Deterministic pseudo-random contents including zeros.
        let mut state = seed | 1;
        let t = Tensor::from_fn(shape, a, |_, _, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state % 3 == 0 { 0.0 } else { (state % 97) as f32 - 48.0 }
        });
        let back = t.to_layout(b).to_layout(a);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Density is invariant under relayout (zeros are neither created nor
    /// destroyed by transposition).
    #[test]
    fn density_layout_invariant(shape in small_shape(), a in layout(), b in layout(), seed in any::<u64>()) {
        let mut state = seed | 1;
        let t = Tensor::from_fn(shape, a, |_, _, _, _| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if state % 2 == 0 { 0.0 } else { 1.0 }
        });
        let u = t.to_layout(b);
        prop_assert_eq!(t.count_nonzero(), u.count_nonzero());
    }

    /// `from_fn` + `get` agree for all coordinates.
    #[test]
    fn from_fn_get_agree(shape in small_shape(), l in layout()) {
        let t = Tensor::from_fn(shape, l, |n, c, h, w| (n * 1_000 + c * 100 + h * 10 + w) as f32);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        prop_assert_eq!(t.get(n, c, h, w), (n * 1_000 + c * 100 + h * 10 + w) as f32);
                    }
                }
            }
        }
    }
}
