//! Property-based tests for layout arithmetic and relayout round-trips.
//!
//! The proptest crate is unavailable offline, so these are deterministic
//! property loops over a seeded generator; every failure reproduces from
//! its case index.

use cdma_tensor::{Layout, Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 128;

fn small_shape(rng: &mut StdRng) -> Shape4 {
    Shape4::new(
        rng.gen_range(1usize..5),
        rng.gen_range(1usize..6),
        rng.gen_range(1usize..7),
        rng.gen_range(1usize..7),
    )
}

fn layout(rng: &mut StdRng) -> Layout {
    Layout::ALL[rng.gen_range(0usize..Layout::ALL.len())]
}

fn for_each_case(seed: u64, mut check: impl FnMut(u64, &mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ (case.wrapping_mul(0x9E3779B97F4A7C15)));
        check(case, &mut rng);
    }
}

/// `coords` is the inverse of `offset` for every layout and shape.
#[test]
fn offset_coords_roundtrip() {
    for_each_case(0x7E5507, |case, rng| {
        let shape = small_shape(rng);
        let l = layout(rng);
        let off = rng.gen_range(0usize..shape.len());
        let (n, c, h, w) = l.coords(shape, off);
        assert!(n < shape.n && c < shape.c && h < shape.h && w < shape.w);
        assert_eq!(l.offset(shape, n, c, h, w), off, "case {case}");
    });
}

/// Relayout in any direction preserves every logical element.
#[test]
fn relayout_roundtrip() {
    for_each_case(0x2E1A, |case, rng| {
        let shape = small_shape(rng);
        let (a, b) = (layout(rng), layout(rng));
        // Deterministic pseudo-random contents including zeros.
        let mut state = rng.gen_range(0u64..=u64::MAX / 2) | 1;
        let t = Tensor::from_fn(shape, a, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state % 3 == 0 {
                0.0
            } else {
                (state % 97) as f32 - 48.0
            }
        });
        let back = t.to_layout(b).to_layout(a);
        assert_eq!(back.as_slice(), t.as_slice(), "case {case}");
    });
}

/// Density is invariant under relayout (zeros are neither created nor
/// destroyed by transposition).
#[test]
fn density_layout_invariant() {
    for_each_case(0xDE4517, |case, rng| {
        let shape = small_shape(rng);
        let (a, b) = (layout(rng), layout(rng));
        let mut state = rng.gen_range(0u64..=u64::MAX / 2) | 1;
        let t = Tensor::from_fn(shape, a, |_, _, _, _| {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            if state % 2 == 0 {
                0.0
            } else {
                1.0
            }
        });
        let u = t.to_layout(b);
        assert_eq!(t.count_nonzero(), u.count_nonzero(), "case {case}");
    });
}

/// `from_fn` + `get` agree for all coordinates.
#[test]
fn from_fn_get_agree() {
    for_each_case(0xF67E7, |case, rng| {
        let shape = small_shape(rng);
        let l = layout(rng);
        let t = Tensor::from_fn(shape, l, |n, c, h, w| {
            (n * 1_000 + c * 100 + h * 10 + w) as f32
        });
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        assert_eq!(
                            t.get(n, c, h, w),
                            (n * 1_000 + c * 100 + h * 10 + w) as f32,
                            "case {case}"
                        );
                    }
                }
            }
        }
    });
}
