//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! small slice of `rand`'s API the simulation actually uses — a seedable
//! deterministic generator plus `gen_range` over integer and float ranges —
//! is implemented here and substituted via a path dependency. The generator
//! is xoshiro256++ seeded through SplitMix64: deterministic across
//! platforms, statistically solid for synthetic-data generation, and **not**
//! cryptographically secure (neither is the real `StdRng` contractually).
//!
//! Stream values differ from the real `rand::rngs::StdRng`; nothing in the
//! workspace depends on the exact stream, only on determinism per seed.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-generator trait: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly-distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly from a generator.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Lemire's multiply-shift: unbiased enough for simulation
                // use (bias < 2^-64 per draw), with no rejection loop.
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, isize, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend for
            // seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&j));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all endpoints reachable: {seen:?}");
    }

    #[test]
    fn float_samples_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}
