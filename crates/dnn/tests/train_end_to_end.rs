//! End-to-end training on the synthetic dataset: the network must genuinely
//! learn, and its post-ReLU activation density must show the training-time
//! dynamics the cDMA paper characterizes in Section IV.

use cdma_dnn::synthetic::SyntheticImages;
use cdma_dnn::{
    chance_loss, Conv2d, FullyConnected, Pool, PoolKind, Relu, Sequential, Sgd, Trainer,
};

fn build_net(seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv2d::new("conv0", 1, 8, 3, 1, 1, seed));
    net.push(Relu::new("relu0"));
    net.push(Pool::new("pool0", PoolKind::Max, 2, 2)); // 16 -> 8
    net.push(Conv2d::new("conv1", 8, 16, 3, 1, 1, seed + 1));
    net.push(Relu::new("relu1"));
    net.push(Pool::new("pool1", PoolKind::Max, 2, 2)); // 8 -> 4
    net.push(FullyConnected::new("fc1", 16 * 4 * 4, 4, seed + 2));
    net
}

#[test]
fn network_learns_synthetic_classes() {
    let mut data = SyntheticImages::new(4, 1, 16, 42);
    let mut trainer = Trainer::new(build_net(7), Sgd::new(0.03, 0.9, 1e-4));

    // Baseline: untrained accuracy is chance.
    let (val_x, val_y) = data.batch(64);
    let (loss0, acc0) = trainer.evaluate(&val_x, &val_y);
    assert!(
        (loss0 - chance_loss(4)).abs() < 1.3,
        "untrained loss {loss0} should be near chance"
    );
    assert!(acc0 < 0.6, "untrained accuracy {acc0}");

    let mut losses = Vec::new();
    for _ in 0..250 {
        let (x, y) = data.batch(16);
        losses.push(trainer.train_step(&x, &y));
    }
    let early: f64 = losses[..25].iter().sum::<f64>() / 25.0;
    let late: f64 = losses[losses.len() - 25..].iter().sum::<f64>() / 25.0;
    assert!(
        late < 0.6 * early,
        "training loss should fall substantially: {early:.3} -> {late:.3}"
    );

    // Held-out accuracy well above the 25% chance level.
    let (test_x, test_y) = data.batch(128);
    let (_, acc) = trainer.evaluate(&test_x, &test_y);
    assert!(acc > 0.6, "trained accuracy only {acc}");
}

#[test]
fn relu_density_starts_near_half_and_drops() {
    // Fig. 4's two key facts, measured on a *really trained* network:
    // (1) a freshly initialized ReLU layer sits near 50% density;
    // (2) density falls in the early phase of training.
    let mut data = SyntheticImages::new(4, 1, 16, 1);
    let mut trainer = Trainer::new(build_net(3), Sgd::new(0.03, 0.9, 1e-4));

    let (probe_x, _) = data.batch(32);
    let initial: Vec<_> = trainer.measure_densities(&probe_x);
    let d0: f64 = initial
        .iter()
        .filter(|s| s.layer.starts_with("relu"))
        .map(|s| s.density)
        .sum::<f64>()
        / 2.0;
    assert!(
        (d0 - 0.5).abs() < 0.2,
        "fresh post-ReLU density should be near 50%, got {d0}"
    );

    let mut min_density = d0;
    for step in 0..400 {
        let (x, y) = data.batch(16);
        let _ = trainer.train_step(&x, &y);
        if step % 25 == 24 {
            let samples = trainer.measure_densities(&probe_x);
            let d: f64 = samples
                .iter()
                .filter(|s| s.layer.starts_with("relu"))
                .map(|s| s.density)
                .sum::<f64>()
                / 2.0;
            min_density = min_density.min(d);
        }
    }
    assert!(
        min_density < d0 - 0.02,
        "density should drop during training: start {d0:.3}, min {min_density:.3}"
    );
}

#[test]
fn pooling_increases_density_on_trained_net() {
    // The paper's "pooling layers always increase activation density".
    let mut data = SyntheticImages::new(4, 1, 16, 5);
    let mut trainer = Trainer::new(build_net(11), Sgd::new(0.03, 0.9, 1e-4));
    for _ in 0..150 {
        let (x, y) = data.batch(16);
        let _ = trainer.train_step(&x, &y);
    }
    let (probe_x, _) = data.batch(32);
    let samples = trainer.measure_densities(&probe_x);
    let by_name = |n: &str| samples.iter().find(|s| s.layer == n).unwrap().density;
    assert!(by_name("pool0") >= by_name("relu0"));
    assert!(by_name("pool1") >= by_name("relu1"));
}
