use cdma_tensor::Tensor;

use crate::{Layer, LayerKind, Mode, Sequential, Sgd, SoftmaxCrossEntropy};

/// One layer's density measurement at one training checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct DensitySample {
    /// Layer name.
    pub layer: String,
    /// Layer taxonomy bucket.
    pub kind: LayerKind,
    /// Output elements.
    pub elements: usize,
    /// Non-zero fraction of the layer output.
    pub density: f64,
}

/// Per-layer activation densities recorded over training — the raw data
/// behind Fig. 4 (and, run on a real net here, the genuine counterpart of
/// the paper's characterization).
#[derive(Debug, Clone, Default)]
pub struct DensityTrace {
    records: Vec<(f64, Vec<DensitySample>)>,
}

impl DensityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        DensityTrace::default()
    }

    /// Appends a checkpoint at training progress `t` in `[0, 1]`.
    pub fn record(&mut self, progress: f64, samples: Vec<DensitySample>) {
        self.records.push((progress, samples));
    }

    /// Recorded checkpoints, in insertion order.
    pub fn checkpoints(&self) -> impl Iterator<Item = (f64, &[DensitySample])> {
        self.records.iter().map(|(t, s)| (*t, s.as_slice()))
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no checkpoints were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Density history of one layer across checkpoints.
    pub fn layer_history(&self, layer: &str) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|(t, samples)| {
                samples
                    .iter()
                    .find(|s| s.layer == layer)
                    .map(|s| (*t, s.density))
            })
            .collect()
    }

    /// Element-weighted network density at each checkpoint.
    pub fn network_density(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|(t, samples)| {
                let total: usize = samples.iter().map(|s| s.elements).sum();
                let nonzero: f64 = samples.iter().map(|s| s.density * s.elements as f64).sum();
                (
                    *t,
                    if total == 0 {
                        1.0
                    } else {
                        nonzero / total as f64
                    },
                )
            })
            .collect()
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean loss per recorded interval.
    pub losses: Vec<f64>,
    /// Final evaluation accuracy in `[0, 1]`.
    pub final_accuracy: f64,
    /// Total minibatch steps taken.
    pub steps: usize,
}

/// Couples a [`Sequential`] network with its loss and optimizer and runs the
/// paper's three-step training pass (Fig. 1): forward propagation, loss
/// computation, backward propagation.
#[derive(Debug)]
pub struct Trainer {
    /// The network being trained.
    pub net: Sequential,
    /// Softmax cross-entropy loss.
    pub loss: SoftmaxCrossEntropy,
    /// The optimizer.
    pub sgd: Sgd,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(net: Sequential, sgd: Sgd) -> Self {
        Trainer {
            net,
            loss: SoftmaxCrossEntropy::new(),
            sgd,
        }
    }

    /// Runs one minibatch: forward, loss, backward, SGD step. Returns the
    /// minibatch loss.
    pub fn train_step(&mut self, images: &Tensor, labels: &[usize]) -> f64 {
        self.train_step_probed(images, labels, &mut |_, _, _| {})
    }

    /// Like [`Trainer::train_step`], but invokes `probe(name, kind,
    /// output)` on every layer output during the *training* forward pass —
    /// the offload hook: a cDMA engine attached here sees exactly the
    /// activation tensors vDNN would move to host memory during this step,
    /// so real compressed streams (rather than assumed ratios) can drive
    /// the transfer simulation.
    pub fn train_step_probed<F>(&mut self, images: &Tensor, labels: &[usize], probe: &mut F) -> f64
    where
        F: FnMut(&str, LayerKind, &Tensor),
    {
        self.net.zero_grads();
        let logits = self.net.forward_probed(images, Mode::Train, probe);
        let (loss, dlogits) = self.loss.loss_and_grad(&logits, labels);
        let _ = self.net.backward(&dlogits);
        self.sgd.step(self.net.params_mut());
        loss
    }

    /// Evaluates loss and top-1 accuracy without updating weights.
    pub fn evaluate(&mut self, images: &Tensor, labels: &[usize]) -> (f64, f64) {
        let logits = self.net.forward(images, Mode::Eval);
        let (loss, _) = self.loss.loss_and_grad(&logits, labels);
        let acc = self.loss.accuracy(&logits, labels);
        (loss, acc)
    }

    /// Measures per-layer output densities on `images` (eval mode, so
    /// dropout does not distort the measurement) — one Fig. 4 column.
    pub fn measure_densities(&mut self, images: &Tensor) -> Vec<DensitySample> {
        let mut samples = Vec::new();
        let _ = self
            .net
            .forward_probed(images, Mode::Eval, &mut |name, kind, out| {
                samples.push(DensitySample {
                    layer: name.to_owned(),
                    kind,
                    elements: out.len(),
                    density: out.density(),
                });
            });
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, FullyConnected, Pool, PoolKind, Relu};
    use cdma_tensor::{Layout, Shape4};

    fn tiny_net(seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv2d::new("conv0", 1, 4, 3, 1, 1, seed));
        net.push(Relu::new("relu0"));
        net.push(Pool::new("pool0", PoolKind::Max, 2, 2));
        net.push(FullyConnected::new("fc", 4 * 4 * 4, 3, seed + 1));
        net
    }

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        let mut trainer = Trainer::new(tiny_net(5), Sgd::new(0.05, 0.9, 0.0));
        let x = Tensor::from_fn(Shape4::new(6, 1, 8, 8), Layout::Nchw, |n, _, h, w| {
            // Three distinguishable patterns by label n % 3.
            match n % 3 {
                0 => ((h as f32) / 8.0) - 0.5,
                1 => ((w as f32) / 8.0) - 0.5,
                _ => (((h + w) % 2) as f32) - 0.5,
            }
        });
        let labels = vec![0, 1, 2, 0, 1, 2];
        let first = trainer.train_step(&x, &labels);
        let mut last = first;
        for _ in 0..60 {
            last = trainer.train_step(&x, &labels);
        }
        assert!(
            last < first * 0.5,
            "loss should halve on a memorizable batch: {first} -> {last}"
        );
        let (_, acc) = trainer.evaluate(&x, &labels);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn probed_train_step_matches_plain_step() {
        let x = Tensor::from_fn(Shape4::new(4, 1, 8, 8), Layout::Nchw, |n, _, h, w| {
            ((n + h * w) % 5) as f32 / 5.0 - 0.4
        });
        let labels = vec![0, 1, 2, 0];
        let mut plain = Trainer::new(tiny_net(11), Sgd::new(0.05, 0.9, 0.0));
        let mut probed = Trainer::new(tiny_net(11), Sgd::new(0.05, 0.9, 0.0));
        let mut seen = Vec::new();
        for step in 0..5 {
            let a = plain.train_step(&x, &labels);
            seen.clear();
            let b = probed.train_step_probed(&x, &labels, &mut |name, _, out| {
                seen.push((name.to_owned(), out.len()));
            });
            assert_eq!(a, b, "step {step} diverged");
        }
        // The probe saw every layer output of the training forward pass.
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].0, "conv0");
        assert_eq!(seen[3].0, "fc");
    }

    #[test]
    fn densities_are_recorded_per_layer() {
        let mut trainer = Trainer::new(tiny_net(7), Sgd::new(0.01, 0.9, 0.0));
        let x = Tensor::full(Shape4::new(2, 1, 8, 8), Layout::Nchw, 0.5);
        let samples = trainer.measure_densities(&x);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1].layer, "relu0");
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.density)));
    }

    #[test]
    fn density_trace_layer_history() {
        let mut trace = DensityTrace::new();
        for (t, d) in [(0.0, 0.5), (0.5, 0.2), (1.0, 0.4)] {
            trace.record(
                t,
                vec![DensitySample {
                    layer: "relu0".into(),
                    kind: LayerKind::Activation,
                    elements: 100,
                    density: d,
                }],
            );
        }
        let hist = trace.layer_history("relu0");
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[1], (0.5, 0.2));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert!(trace.layer_history("nope").is_empty());
    }

    #[test]
    fn network_density_is_weighted() {
        let mut trace = DensityTrace::new();
        trace.record(
            0.0,
            vec![
                DensitySample {
                    layer: "big".into(),
                    kind: LayerKind::Activation,
                    elements: 900,
                    density: 1.0,
                },
                DensitySample {
                    layer: "small".into(),
                    kind: LayerKind::Activation,
                    elements: 100,
                    density: 0.0,
                },
            ],
        );
        let nd = trace.network_density();
        assert_eq!(nd.len(), 1);
        assert!((nd[0].1 - 0.9).abs() < 1e-12);
    }
}
