use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight initialization schemes.
///
/// The paper's networks are trained from random initializations ("Trained
/// (0%) corresponds to the point in time when the weights were initialized",
/// Fig. 5); the *distribution* of those initial weights sets the initial
/// activation density (~50% for symmetric distributions feeding ReLU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightInit {
    /// Zero-mean Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation of the distribution.
        std: f64,
    },
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in +
    /// fan_out))`. Keeps activation variance stable across layers.
    Xavier,
    /// He/Kaiming Gaussian: `N(0, sqrt(2 / fan_in))` — the standard choice
    /// in front of ReLU.
    He,
}

impl WeightInit {
    /// Fills `weights` given the layer fan-in/out, deterministically from
    /// `seed`.
    pub fn fill(&self, weights: &mut [f32], fan_in: usize, fan_out: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            WeightInit::Gaussian { std } => {
                for w in weights.iter_mut() {
                    *w = (gaussian(&mut rng) * std) as f32;
                }
            }
            WeightInit::Xavier => {
                let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
                for w in weights.iter_mut() {
                    *w = rng.gen_range(-a..a) as f32;
                }
            }
            WeightInit::He => {
                let std = (2.0 / fan_in as f64).sqrt();
                for w in weights.iter_mut() {
                    *w = (gaussian(&mut rng) * std) as f32;
                }
            }
        }
    }
}

/// Standard normal via Box–Muller (rand 0.8 has no normal distribution in
/// the core crate; this avoids pulling in rand_distr).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        WeightInit::He.fill(&mut a, 9, 16, 42);
        WeightInit::He.fill(&mut b, 9, 16, 42);
        assert_eq!(a, b);
        WeightInit::He.fill(&mut b, 9, 16, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_std_is_respected() {
        let mut w = vec![0f32; 10_000];
        WeightInit::Gaussian { std: 0.5 }.fill(&mut w, 1, 1, 7);
        let mean = w.iter().map(|&x| x as f64).sum::<f64>() / w.len() as f64;
        let var = w.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bounds() {
        let mut w = vec![0f32; 1000];
        WeightInit::Xavier.fill(&mut w, 100, 200, 1);
        let a = (6.0f64 / 300.0).sqrt() as f32;
        assert!(w.iter().all(|&x| x > -a && x < a));
        assert!(w.iter().any(|&x| x.abs() > a / 2.0));
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut small = vec![0f32; 4096];
        let mut large = vec![0f32; 4096];
        WeightInit::He.fill(&mut small, 8, 1, 3);
        WeightInit::He.fill(&mut large, 512, 1, 3);
        let rms = |v: &[f32]| {
            (v.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(rms(&small) > 4.0 * rms(&large));
    }
}
