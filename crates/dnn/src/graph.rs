use cdma_tensor::{Layout, Shape4, Tensor};

use crate::{Layer, LayerKind, Mode, ParamRef};

/// A layer-wise sequential network — the execution model the paper assumes
/// ("forward propagation is a serialized, layer-wise computation process",
/// Section II-B).
///
/// `Sequential` itself implements [`Layer`], so whole networks compose (an
/// inception branch is a `Sequential` inside a [`Parallel`]).
#[derive(Debug, Default)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential {
            name: "net".to_owned(),
            layers: Vec::new(),
        }
    }

    /// Creates an empty, named network (used for inception branches).
    pub fn named(name: &str) -> Self {
        Sequential {
            name: name.to_owned(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in execution order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name().to_owned()).collect()
    }

    /// Runs forward, invoking `probe(name, kind, output)` after every layer
    /// — the instrumentation hook behind the density traces of Fig. 4.
    pub fn forward_probed<F>(&mut self, input: &Tensor, mode: Mode, probe: &mut F) -> Tensor
    where
        F: FnMut(&str, LayerKind, &Tensor),
    {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
            probe(layer.name(), layer.kind(), &x);
        }
        x
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Composite
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        self.layers
            .iter()
            .fold(input, |s, layer| layer.output_shape(s))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

/// Inception-style fan-out: runs every branch on the same input and
/// concatenates the branch outputs along the channel dimension (GoogLeNet's
/// inception module, the structural element of the deepest network in the
/// paper's evaluation).
#[derive(Debug)]
pub struct Parallel {
    name: String,
    branches: Vec<Sequential>,
    branch_channels: Vec<usize>,
    input_shape: Option<Shape4>,
}

impl Parallel {
    /// Creates a fan-out module from branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(name: &str, branches: Vec<Sequential>) -> Self {
        assert!(
            !branches.is_empty(),
            "parallel module needs at least one branch"
        );
        Parallel {
            name: name.to_owned(),
            branches,
            branch_channels: Vec::new(),
            input_shape: None,
        }
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

impl Layer for Parallel {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Composite
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        let shapes: Vec<Shape4> = self
            .branches
            .iter()
            .map(|b| b.output_shape(input))
            .collect();
        let first = shapes[0];
        for s in &shapes[1..] {
            assert!(
                s.n == first.n && s.h == first.h && s.w == first.w,
                "module {}: branch output shapes disagree spatially ({} vs {})",
                self.name,
                first,
                s
            );
        }
        Shape4::new(first.n, shapes.iter().map(|s| s.c).sum(), first.h, first.w)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out_shape = self.output_shape(input.shape());
        let mut outputs = Vec::with_capacity(self.branches.len());
        self.branch_channels.clear();
        for branch in &mut self.branches {
            let y = branch.forward(input, mode);
            self.branch_channels.push(y.shape().c);
            outputs.push(y);
        }
        self.input_shape = Some(input.shape());
        concat_channels(&outputs, out_shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input_shape = self.input_shape.expect("backward called before forward");
        let parts = split_channels(grad_out, &self.branch_channels);
        let mut dx = Tensor::zeros(input_shape, Layout::Nchw);
        for (branch, part) in self.branches.iter_mut().zip(parts) {
            let g = branch.backward(&part);
            for (a, b) in dx.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *a += b;
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        self.branches
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect()
    }

    fn param_count(&self) -> usize {
        self.branches.iter().map(|b| b.param_count()).sum()
    }

    fn zero_grads(&mut self) {
        for b in &mut self.branches {
            b.zero_grads();
        }
    }
}

/// Concatenates NCHW tensors along `C`.
fn concat_channels(parts: &[Tensor], out_shape: Shape4) -> Tensor {
    let mut out = Tensor::zeros(out_shape, Layout::Nchw);
    let per_image_out = out_shape.per_image();
    {
        let os = out.as_mut_slice();
        for n in 0..out_shape.n {
            let mut c_off = 0usize;
            for p in parts {
                let ps = p.shape();
                let chunk = ps.per_image();
                let src = &p.as_slice()[n * chunk..(n + 1) * chunk];
                let dst_base = n * per_image_out + c_off * ps.plane();
                os[dst_base..dst_base + chunk].copy_from_slice(src);
                c_off += ps.c;
            }
        }
    }
    out
}

/// Splits an NCHW tensor along `C` into chunks of the given channel counts.
fn split_channels(t: &Tensor, channels: &[usize]) -> Vec<Tensor> {
    let s = t.shape();
    debug_assert_eq!(channels.iter().sum::<usize>(), s.c);
    let ts = t.as_slice();
    let mut outs = Vec::with_capacity(channels.len());
    let mut c_off = 0usize;
    for &c in channels {
        let shape = Shape4::new(s.n, c, s.h, s.w);
        let mut part = Tensor::zeros(shape, Layout::Nchw);
        {
            let plane = s.plane();
            let per_image_src = s.per_image();
            let chunk = c * plane;
            let ps = part.as_mut_slice();
            for n in 0..s.n {
                let src_base = n * per_image_src + c_off * plane;
                ps[n * chunk..(n + 1) * chunk].copy_from_slice(&ts[src_base..src_base + chunk]);
            }
        }
        outs.push(part);
        c_off += c;
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Relu};

    fn pattern_input() -> Tensor {
        Tensor::from_fn(Shape4::new(2, 3, 4, 4), Layout::Nchw, |n, c, h, w| {
            (n * 100 + c * 10 + h * 4 + w) as f32 * 0.1 - 2.0
        })
    }

    #[test]
    fn sequential_shapes_compose() {
        let mut net = Sequential::new();
        net.push(Conv2d::new("c0", 3, 8, 3, 1, 1, 0));
        net.push(Relu::new("r0"));
        net.push(Conv2d::new("c1", 8, 4, 3, 2, 0, 1));
        assert_eq!(
            net.output_shape(Shape4::new(2, 3, 8, 8)),
            Shape4::new(2, 4, 3, 3)
        );
        assert_eq!(net.len(), 3);
        assert_eq!(net.layer_names(), vec!["c0", "r0", "c1"]);
    }

    #[test]
    fn probe_sees_every_layer() {
        let mut net = Sequential::new();
        net.push(Conv2d::new("c0", 3, 4, 3, 1, 1, 0));
        net.push(Relu::new("r0"));
        let mut seen = Vec::new();
        let _ = net.forward_probed(&pattern_input(), Mode::Train, &mut |name, kind, out| {
            seen.push((name.to_owned(), kind, out.shape()));
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, "c0");
        assert_eq!(seen[1].1, LayerKind::Activation);
    }

    #[test]
    fn sequential_backward_runs_in_reverse() {
        let mut net = Sequential::new();
        net.push(Conv2d::new("c0", 3, 4, 3, 1, 1, 3));
        net.push(Relu::new("r0"));
        let x = pattern_input();
        let y = net.forward(&x, Mode::Train);
        let g = Tensor::full(y.shape(), Layout::Nchw, 1.0);
        let dx = net.backward(&g);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn concat_and_split_are_inverse() {
        let a = Tensor::from_fn(Shape4::new(2, 2, 3, 3), Layout::Nchw, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        let b = Tensor::from_fn(Shape4::new(2, 3, 3, 3), Layout::Nchw, |n, c, h, w| {
            -((n * 1000 + c * 100 + h * 10 + w) as f32)
        });
        let cat = concat_channels(&[a.clone(), b.clone()], Shape4::new(2, 5, 3, 3));
        assert_eq!(cat.get(0, 0, 1, 2), a.get(0, 0, 1, 2));
        assert_eq!(cat.get(1, 3, 2, 0), b.get(1, 1, 2, 0));
        let parts = split_channels(&cat, &[2, 3]);
        assert_eq!(parts[0].as_slice(), a.as_slice());
        assert_eq!(parts[1].as_slice(), b.as_slice());
    }

    #[test]
    fn parallel_concatenates_branches() {
        let mut b1 = Sequential::named("b1");
        b1.push(Conv2d::new("b1c", 3, 4, 1, 1, 0, 0));
        let mut b2 = Sequential::named("b2");
        b2.push(Conv2d::new("b2c", 3, 6, 3, 1, 1, 1));
        let mut inception = Parallel::new("inc", vec![b1, b2]);
        assert_eq!(inception.branch_count(), 2);
        let x = pattern_input();
        assert_eq!(inception.output_shape(x.shape()), Shape4::new(2, 10, 4, 4));
        let y = inception.forward(&x, Mode::Train);
        assert_eq!(y.shape(), Shape4::new(2, 10, 4, 4));
    }

    #[test]
    fn parallel_backward_sums_branch_gradients() {
        // Two identity 1x1-conv branches: dx must be the sum of both branch
        // gradients = 2x the upstream gradient slice sum.
        let make_identity = |name: &str| {
            let mut s = Sequential::named(name);
            let mut conv = Conv2d::new(&format!("{name}c"), 1, 1, 1, 1, 0, 0);
            conv.params_mut()[0].values[0] = 1.0;
            s.push(conv);
            s
        };
        let mut p = Parallel::new("p", vec![make_identity("a"), make_identity("b")]);
        let x = Tensor::full(Shape4::new(1, 1, 2, 2), Layout::Nchw, 3.0);
        let _ = p.forward(&x, Mode::Train);
        let g = Tensor::full(Shape4::new(1, 2, 2, 2), Layout::Nchw, 1.0);
        let dx = p.backward(&g);
        assert!(dx.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn parallel_param_count_sums_branches() {
        let mut b1 = Sequential::named("b1");
        b1.push(Conv2d::new("c", 2, 2, 1, 1, 0, 0)); // 2*2*1*1 + 2 = 6
        let mut b2 = Sequential::named("b2");
        b2.push(Conv2d::new("c", 2, 3, 1, 1, 0, 0)); // 3*2*1*1 + 3 = 9
        let p = Parallel::new("p", vec![b1, b2]);
        assert_eq!(p.param_count(), 15);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_parallel_rejected() {
        let _ = Parallel::new("p", vec![]);
    }
}
