use cdma_tensor::{Layout, Shape4, Tensor};

use crate::{Layer, LayerKind, Mode};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// Spatial down-sampling layer (Section II-A).
///
/// The paper's Fig. 4/5 observation that "pooling layers always increase
/// activation density" falls out of the max/avg semantics: a pooled output
/// is zero only when *every* input in its window is zero. The unit tests
/// pin down exactly that behaviour.
#[derive(Debug)]
pub struct Pool {
    name: String,
    kind: PoolKind,
    window: usize,
    stride: usize,
    /// For max pooling: flat input index chosen per output element.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Shape4>,
}

impl Pool {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(name: &str, kind: PoolKind, window: usize, stride: usize) -> Self {
        assert!(
            window > 0 && stride > 0,
            "window and stride must be positive"
        );
        Pool {
            name: name.to_owned(),
            kind,
            window,
            stride,
            argmax: None,
            input_shape: None,
        }
    }

    /// AlexNet-style overlapping 3×3/stride-2 max pool.
    pub fn max3x3s2(name: &str) -> Self {
        Pool::new(name, PoolKind::Max, 3, 2)
    }

    fn out_extent(&self, input: usize) -> usize {
        assert!(
            input >= self.window,
            "layer {}: input extent {input} smaller than pool window {}",
            self.name,
            self.window
        );
        (input - self.window) / self.stride + 1
    }
}

impl Layer for Pool {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        Shape4::new(
            input.n,
            input.c,
            self.out_extent(input.h),
            self.out_extent(input.w),
        )
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let s = input.shape();
        let os = self.output_shape(s);
        let xs = input.as_slice();
        let (xsn, xsc, xsh, _) = Layout::Nchw.strides(s);
        let mut y = Tensor::zeros(os, Layout::Nchw);
        let mut argmax = vec![0usize; os.len()];
        {
            let ys = y.as_mut_slice();
            let mut oi = 0usize;
            for n in 0..s.n {
                for c in 0..s.c {
                    let base = n * xsn + c * xsc;
                    for oh in 0..os.h {
                        for ow in 0..os.w {
                            match self.kind {
                                PoolKind::Max => {
                                    let mut best = f32::NEG_INFINITY;
                                    let mut best_idx = 0usize;
                                    for kh in 0..self.window {
                                        for kw in 0..self.window {
                                            let idx = base
                                                + (oh * self.stride + kh) * xsh
                                                + (ow * self.stride + kw);
                                            if xs[idx] > best {
                                                best = xs[idx];
                                                best_idx = idx;
                                            }
                                        }
                                    }
                                    ys[oi] = best;
                                    argmax[oi] = best_idx;
                                }
                                PoolKind::Avg => {
                                    let mut acc = 0f32;
                                    for kh in 0..self.window {
                                        for kw in 0..self.window {
                                            acc += xs[base
                                                + (oh * self.stride + kh) * xsh
                                                + (ow * self.stride + kw)];
                                        }
                                    }
                                    ys[oi] = acc / (self.window * self.window) as f32;
                                }
                            }
                            oi += 1;
                        }
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.input_shape = Some(s);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self.input_shape.expect("backward called before forward");
        let os = self.output_shape(s);
        assert_eq!(
            grad_out.shape(),
            os,
            "layer {}: gradient shape mismatch",
            self.name
        );
        let gs = grad_out.as_slice();
        let mut dx = Tensor::zeros(s, Layout::Nchw);
        let dxs = dx.as_mut_slice();
        match self.kind {
            PoolKind::Max => {
                let argmax = self.argmax.as_ref().expect("argmax cached");
                for (oi, &src) in argmax.iter().enumerate() {
                    dxs[src] += gs[oi];
                }
            }
            PoolKind::Avg => {
                let (xsn, xsc, xsh, _) = Layout::Nchw.strides(s);
                let scale = 1.0 / (self.window * self.window) as f32;
                let mut oi = 0usize;
                for n in 0..s.n {
                    for c in 0..s.c {
                        let base = n * xsn + c * xsc;
                        for oh in 0..os.h {
                            for ow in 0..os.w {
                                let g = gs[oi] * scale;
                                for kh in 0..self.window {
                                    for kw in 0..self.window {
                                        dxs[base
                                            + (oh * self.stride + kh) * xsh
                                            + (ow * self.stride + kw)] += g;
                                    }
                                }
                                oi += 1;
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    fn input(seed: u64) -> Tensor {
        // All values distinct and well separated (>= 0.05 apart) so the
        // central-difference probe (eps = 1e-3) can never flip an argmax —
        // max pooling is not differentiable at ties.
        let mut counter = 0usize;
        // 6*seed + 5 is ≡ 5 (mod 6), hence coprime with 144 = 16·9: the map
        // i -> i*mult (mod 144) is a permutation and all values are unique.
        let mult = 6 * seed as usize + 5;
        Tensor::from_fn(Shape4::new(2, 2, 6, 6), Layout::Nchw, |_, _, _, _| {
            let i = counter;
            counter += 1;
            (((i * mult) % 144) as f32) * 0.05 - 3.0
        })
    }

    #[test]
    fn output_shape_alexnet_pool0() {
        // AlexNet pool0: (96, 55, 55) -> (96, 27, 27) with 3x3 s2.
        let p = Pool::max3x3s2("pool0");
        assert_eq!(
            p.output_shape(Shape4::new(1, 96, 55, 55)),
            Shape4::new(1, 96, 27, 27)
        );
    }

    #[test]
    fn max_pool_picks_maximum() {
        let mut p = Pool::new("p", PoolKind::Max, 2, 2);
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 2, 2),
            Layout::Nchw,
            vec![1.0, -2.0, 3.0, 0.5],
        );
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let mut p = Pool::new("p", PoolKind::Avg, 2, 2);
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 2, 2),
            Layout::Nchw,
            vec![1.0, 2.0, 3.0, 2.0],
        );
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[2.0]);
    }

    #[test]
    fn pooling_increases_density() {
        // The paper's Fig. 4 observation: output is zero only if the whole
        // window is zero, so density never decreases through max pooling of
        // non-negative (post-ReLU) data.
        let mut state = 9u64;
        let x = Tensor::from_fn(Shape4::new(2, 4, 8, 8), Layout::Nchw, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) % 10 < 7 {
                0.0
            } else {
                ((state >> 33) % 5) as f32 + 1.0
            }
        });
        let mut p = Pool::new("p", PoolKind::Max, 2, 2);
        let y = p.forward(&x, Mode::Train);
        assert!(
            y.density() > x.density(),
            "pool density {} should exceed input {}",
            y.density(),
            x.density()
        );
    }

    #[test]
    fn max_pool_gradient_goes_to_argmax_only() {
        let mut p = Pool::new("p", PoolKind::Max, 2, 2);
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 2, 2),
            Layout::Nchw,
            vec![1.0, -2.0, 3.0, 0.5],
        );
        let _ = p.forward(&x, Mode::Train);
        let g = Tensor::full(Shape4::new(1, 1, 1, 1), Layout::Nchw, 2.0);
        let dx = p.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn gradcheck_max_pool() {
        let mut p = Pool::new("p", PoolKind::Max, 2, 2);
        gradcheck::check_input_gradient(&mut p, &input(3), 2e-2);
    }

    #[test]
    fn gradcheck_avg_pool() {
        let mut p = Pool::new("p", PoolKind::Avg, 3, 1);
        gradcheck::check_input_gradient(&mut p, &input(5), 2e-2);
    }

    #[test]
    fn overlapping_windows_accumulate_gradient() {
        let mut p = Pool::new("p", PoolKind::Avg, 2, 1);
        let x = Tensor::full(Shape4::new(1, 1, 3, 3), Layout::Nchw, 1.0);
        let _ = p.forward(&x, Mode::Train);
        let g = Tensor::full(Shape4::new(1, 1, 2, 2), Layout::Nchw, 4.0);
        let dx = p.backward(&g);
        // Centre element appears in all four windows: 4 * 4.0 / 4 = 4.0.
        assert_eq!(dx.get(0, 0, 1, 1), 4.0);
        // Corner appears in one window: 4.0 / 4 = 1.0.
        assert_eq!(dx.get(0, 0, 0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "smaller than pool window")]
    fn too_small_input_rejected() {
        let p = Pool::new("p", PoolKind::Max, 4, 2);
        let _ = p.output_shape(Shape4::new(1, 1, 3, 3));
    }
}
