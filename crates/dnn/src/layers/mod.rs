//! Layer implementations (one module per layer type, Section II-A).

pub(crate) mod activation_fns;
pub(crate) mod conv;
pub(crate) mod dropout;
pub(crate) mod fc;
pub(crate) mod lrn;
pub(crate) mod pool;
pub(crate) mod relu;
