use cdma_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Layer, LayerKind, Mode};

/// Inverted dropout (Srivastava et al. 2014), used on the paper's FC layers
/// with rate 0.5 (Section VI, "Training methodology").
///
/// During training each activation is zeroed with probability `rate` and the
/// survivors are scaled by `1/(1-rate)`, so evaluation is a pure identity.
/// Note dropout *adds* activation sparsity on top of ReLU's — one more
/// reason the paper's FC layers compress so well during training.
#[derive(Debug)]
pub struct Dropout {
    name: String,
    rate: f64,
    rng: StdRng,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1)`.
    pub fn new(name: &str, rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Dropout {
            name: name.to_owned(),
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dropout
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.mask = None;
                input.clone()
            }
            Mode::Train => {
                let keep_scale = (1.0 / (1.0 - self.rate)) as f32;
                let mask: Vec<bool> = (0..input.len())
                    .map(|_| self.rng.gen_range(0.0..1.0) >= self.rate)
                    .collect();
                let mut y = input.clone();
                for (v, &keep) in y.as_mut_slice().iter_mut().zip(&mask) {
                    *v = if keep { *v * keep_scale } else { 0.0 };
                }
                self.mask = Some(mask);
                y
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                assert_eq!(
                    mask.len(),
                    grad_out.len(),
                    "layer {}: gradient length mismatch",
                    self.name
                );
                let keep_scale = (1.0 / (1.0 - self.rate)) as f32;
                let mut dx = grad_out.clone();
                for (g, &keep) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *g = if keep { *g * keep_scale } else { 0.0 };
                }
                dx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_tensor::Layout;

    fn ones() -> Tensor {
        Tensor::full(Shape4::new(2, 1, 16, 16), Layout::Nchw, 1.0)
    }

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("d", 0.5, 1);
        let x = ones();
        let y = d.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), x.as_slice());
        // Backward with no mask is identity too.
        let g = d.backward(&x);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_drops_roughly_rate() {
        let mut d = Dropout::new("d", 0.5, 2);
        let y = d.forward(&ones(), Mode::Train);
        let density = y.density();
        assert!((density - 0.5).abs() < 0.08, "density {density}");
        // Survivors are scaled by 2x (inverted dropout).
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expectation_is_preserved() {
        let mut d = Dropout::new("d", 0.3, 3);
        let y = d.forward(&ones(), Mode::Train);
        let mean = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new("d", 0.5, 4);
        let y = d.forward(&ones(), Mode::Train);
        let g = d.backward(&ones());
        // Gradient flows exactly where the forward pass kept values.
        for (gy, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*gy == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_rate_keeps_everything() {
        let mut d = Dropout::new("d", 0.0, 5);
        let y = d.forward(&ones(), Mode::Train);
        assert_eq!(y.density(), 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rate_one_rejected() {
        let _ = Dropout::new("d", 1.0, 0);
    }
}
