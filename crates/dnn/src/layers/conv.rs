use cdma_tensor::{Layout, Shape4, Tensor};

use crate::{Layer, LayerKind, Mode, ParamRef, WeightInit};

/// Which forward/backward implementation a [`Conv2d`] uses.
///
/// The paper notes (Section VI) that "state-of-the-art DNN libraries
/// refactor the convolution operations into a dense matrix-multiplication
/// operation" — the im2col + GEMM strategy of cuDNN. Both a direct
/// 7-deep-loop implementation and the im2col-GEMM refactoring are provided
/// and cross-checked in the tests; im2col is the default, like cuDNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvImpl {
    /// Straightforward nested loops.
    Direct,
    /// Lower to an `[out_c, ic·kh·kw] × [ic·kh·kw, oh·ow]` matrix product.
    Im2col,
}

/// 2-D convolution layer with square kernels, stride and zero padding.
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    w_grads: Vec<f32>,
    b_grads: Vec<f32>,
    implementation: ConvImpl,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He initialization.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero or any channel count is zero.
    pub fn new(
        name: &str,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(in_c > 0 && out_c > 0, "channel counts must be positive");
        let mut weights = vec![0f32; out_c * in_c * kernel * kernel];
        let fan_in = in_c * kernel * kernel;
        let fan_out = out_c * kernel * kernel;
        WeightInit::He.fill(&mut weights, fan_in, fan_out, seed);
        Conv2d {
            name: name.to_owned(),
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            w_grads: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; out_c],
            b_grads: vec![0.0; out_c],
            implementation: ConvImpl::Im2col,
            cached_input: None,
        }
    }

    /// Switches the forward/backward implementation.
    pub fn with_impl(mut self, implementation: ConvImpl) -> Self {
        self.implementation = implementation;
        self
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    fn out_extent(&self, input: usize) -> usize {
        assert!(
            input + 2 * self.pad >= self.kernel,
            "layer {}: input extent {input} (+2*{} pad) smaller than kernel {}",
            self.name,
            self.pad,
            self.kernel
        );
        (input + 2 * self.pad - self.kernel) / self.stride + 1
    }

    fn forward_direct(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        let out_shape = self.output_shape(s);
        let (k, st, pad) = (self.kernel, self.stride, self.pad as isize);
        let xs = x.as_slice();
        let mut y = Tensor::zeros(out_shape, Layout::Nchw);
        let (xsn, xsc, xsh, _) = Layout::Nchw.strides(s);
        let (ysn, ysc, ysh, _) = Layout::Nchw.strides(out_shape);
        let ys = y.as_mut_slice();
        for n in 0..s.n {
            for oc in 0..self.out_c {
                let wbase = oc * self.in_c * k * k;
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_c {
                            for kh in 0..k {
                                let ih = (oh * st) as isize + kh as isize - pad;
                                if ih < 0 || ih >= s.h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let iw = (ow * st) as isize + kw as isize - pad;
                                    if iw < 0 || iw >= s.w as isize {
                                        continue;
                                    }
                                    let xv =
                                        xs[n * xsn + ic * xsc + ih as usize * xsh + iw as usize];
                                    let wv = self.weights[wbase + (ic * k + kh) * k + kw];
                                    acc += xv * wv;
                                }
                            }
                        }
                        ys[n * ysn + oc * ysc + oh * ysh + ow] = acc;
                    }
                }
            }
        }
        y
    }

    /// Builds the im2col matrix for image `n`: rows are `(ic, kh, kw)`
    /// patch coordinates, columns are `(oh, ow)` output positions.
    fn im2col(&self, x: &Tensor, n: usize, oh_w: (usize, usize)) -> Vec<f32> {
        let s = x.shape();
        let (out_h, out_w) = oh_w;
        let k = self.kernel;
        let rows = self.in_c * k * k;
        let cols = out_h * out_w;
        let mut m = vec![0f32; rows * cols];
        let xs = x.as_slice();
        let (xsn, xsc, xsh, _) = Layout::Nchw.strides(s);
        for ic in 0..self.in_c {
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    for oh in 0..out_h {
                        let ih = (oh * self.stride + kh) as isize - self.pad as isize;
                        if ih < 0 || ih >= s.h as isize {
                            continue;
                        }
                        for ow in 0..out_w {
                            let iw = (ow * self.stride + kw) as isize - self.pad as isize;
                            if iw < 0 || iw >= s.w as isize {
                                continue;
                            }
                            m[row * cols + oh * out_w + ow] =
                                xs[n * xsn + ic * xsc + ih as usize * xsh + iw as usize];
                        }
                    }
                }
            }
        }
        m
    }

    fn forward_im2col(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        let out_shape = self.output_shape(s);
        let (out_h, out_w) = (out_shape.h, out_shape.w);
        let k = self.kernel;
        let rows = self.in_c * k * k;
        let cols = out_h * out_w;
        let mut y = Tensor::zeros(out_shape, Layout::Nchw);
        let (ysn, ysc, _, _) = Layout::Nchw.strides(out_shape);
        for n in 0..s.n {
            let m = self.im2col(x, n, (out_h, out_w));
            // GEMM: weights [out_c × rows] times m [rows × cols].
            let ys = y.as_mut_slice();
            for oc in 0..self.out_c {
                let wrow = &self.weights[oc * rows..(oc + 1) * rows];
                let ybase = n * ysn + oc * ysc;
                for (r, &wv) in wrow.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let mrow = &m[r * cols..(r + 1) * cols];
                    for (col, &mv) in mrow.iter().enumerate() {
                        ys[ybase + col] += wv * mv;
                    }
                }
                for col in 0..cols {
                    ys[ybase + col] += self.bias[oc];
                }
            }
        }
        y
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        assert_eq!(
            input.c, self.in_c,
            "layer {}: expected {} input channels, got {}",
            self.name, self.in_c, input.c
        );
        Shape4::new(
            input.n,
            self.out_c,
            self.out_extent(input.h),
            self.out_extent(input.w),
        )
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let y = match self.implementation {
            ConvImpl::Direct => self.forward_direct(input),
            ConvImpl::Im2col => self.forward_im2col(input),
        };
        self.cached_input = Some(input.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let s = x.shape();
        let out_shape = self.output_shape(s);
        assert_eq!(
            grad_out.shape(),
            out_shape,
            "layer {}: gradient shape mismatch",
            self.name
        );
        let k = self.kernel;
        let (st, pad) = (self.stride, self.pad as isize);
        let xs = x.as_slice();
        let gs = grad_out.as_slice();
        let mut dx = Tensor::zeros(s, Layout::Nchw);
        let dxs = dx.as_mut_slice();
        let (xsn, xsc, xsh, _) = Layout::Nchw.strides(s);
        let (ysn, ysc, ysh, _) = Layout::Nchw.strides(out_shape);
        for n in 0..s.n {
            for oc in 0..self.out_c {
                let wbase = oc * self.in_c * k * k;
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let g = gs[n * ysn + oc * ysc + oh * ysh + ow];
                        if g == 0.0 {
                            continue;
                        }
                        self.b_grads[oc] += g;
                        for ic in 0..self.in_c {
                            for kh in 0..k {
                                let ih = (oh * st) as isize + kh as isize - pad;
                                if ih < 0 || ih >= s.h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let iw = (ow * st) as isize + kw as isize - pad;
                                    if iw < 0 || iw >= s.w as isize {
                                        continue;
                                    }
                                    let xi = n * xsn + ic * xsc + ih as usize * xsh + iw as usize;
                                    let wi = wbase + (ic * k + kh) * k + kw;
                                    self.w_grads[wi] += g * xs[xi];
                                    dxs[xi] += g * self.weights[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                values: &mut self.weights,
                grads: &mut self.w_grads,
            },
            ParamRef {
                values: &mut self.bias,
                grads: &mut self.b_grads,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.w_grads.iter_mut().for_each(|g| *g = 0.0);
        self.b_grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    fn input(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(Shape4::new(n, c, h, w), Layout::Nchw, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 200) as f32 / 100.0 - 1.0
        })
    }

    #[test]
    fn output_shape_formula() {
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, 0);
        assert_eq!(
            conv.output_shape(Shape4::new(2, 3, 8, 8)),
            Shape4::new(2, 8, 8, 8)
        );
        let conv = Conv2d::new("c", 3, 96, 11, 4, 0, 0);
        // AlexNet conv0: 227 -> 55.
        assert_eq!(
            conv.output_shape(Shape4::new(1, 3, 227, 227)),
            Shape4::new(1, 96, 55, 55)
        );
    }

    #[test]
    fn direct_and_im2col_agree() {
        let x = input(2, 3, 9, 9, 5);
        for (stride, pad) in [(1, 0), (1, 1), (2, 1), (3, 2)] {
            let mut a = Conv2d::new("a", 3, 4, 3, stride, pad, 9).with_impl(ConvImpl::Direct);
            let mut b = Conv2d::new("b", 3, 4, 3, stride, pad, 9).with_impl(ConvImpl::Im2col);
            let ya = a.forward(&x, Mode::Train);
            let yb = b.forward(&x, Mode::Train);
            assert_eq!(ya.shape(), yb.shape());
            for (p, q) in ya.as_slice().iter().zip(yb.as_slice()) {
                assert!(
                    (p - q).abs() < 1e-4,
                    "stride {stride} pad {pad}: {p} vs {q}"
                );
            }
        }
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new("id", 1, 1, 1, 1, 0, 0);
        conv.params_mut()[0].values[0] = 1.0;
        let x = input(1, 1, 4, 4, 3);
        let y = conv.forward(&x, Mode::Train);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = Conv2d::new("b", 1, 2, 3, 1, 1, 1);
        for w in conv.params_mut()[0].values.iter_mut() {
            *w = 0.0;
        }
        conv.params_mut()[1].values[0] = 2.5;
        conv.params_mut()[1].values[1] = -1.0;
        let x = input(1, 1, 4, 4, 3);
        let y = conv.forward(&x, Mode::Train);
        assert!(y.as_slice()[..16].iter().all(|&v| (v - 2.5).abs() < 1e-6));
        assert!(y.as_slice()[16..].iter().all(|&v| (v + 1.0).abs() < 1e-6));
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut conv = Conv2d::new("g", 2, 3, 3, 1, 1, 11);
        let x = input(2, 2, 5, 5, 7);
        gradcheck::check_input_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn input_gradient_matches_numeric_strided() {
        let mut conv = Conv2d::new("g", 2, 2, 3, 2, 0, 13);
        let x = input(1, 2, 7, 7, 9);
        gradcheck::check_input_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let mut conv = Conv2d::new("g", 2, 3, 3, 1, 1, 17);
        let x = input(2, 2, 5, 5, 19);
        gradcheck::check_param_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn param_count_is_correct() {
        let conv = Conv2d::new("c", 3, 8, 5, 1, 2, 0);
        assert_eq!(conv.param_count(), 8 * 3 * 5 * 5 + 8);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn wrong_channel_count_rejected() {
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, 0);
        let _ = conv.output_shape(Shape4::new(1, 4, 8, 8));
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn too_small_input_rejected() {
        let conv = Conv2d::new("c", 1, 1, 5, 1, 0, 0);
        let _ = conv.output_shape(Shape4::new(1, 1, 3, 3));
    }
}
