use cdma_tensor::{Shape4, Tensor};

use crate::{Layer, LayerKind, Mode};

/// Saturating element-wise activation: sigmoid or tanh.
///
/// Section III of the paper draws the boundary of cDMA's applicability
/// exactly here: "cDMA is less well-suited for RNNs based on LSTMs or GRUs,
/// as they employ `sigmoid` and `tanh` activation functions rather than
/// ReLUs." Sigmoid outputs are strictly positive and tanh outputs are zero
/// only at exactly zero input, so neither produces the zero-valued
/// activations ZVC compresses — the tests pin that down.
#[derive(Debug)]
pub struct Saturating {
    name: String,
    kind: SaturatingKind,
    cached_output: Option<Tensor>,
}

/// Which saturating nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturatingKind {
    /// Logistic sigmoid `1 / (1 + e^-x)`, range (0, 1).
    Sigmoid,
    /// Hyperbolic tangent, range (-1, 1).
    Tanh,
}

impl Saturating {
    /// Creates a sigmoid layer.
    pub fn sigmoid(name: &str) -> Self {
        Saturating {
            name: name.to_owned(),
            kind: SaturatingKind::Sigmoid,
            cached_output: None,
        }
    }

    /// Creates a tanh layer.
    pub fn tanh(name: &str) -> Self {
        Saturating {
            name: name.to_owned(),
            kind: SaturatingKind::Tanh,
            cached_output: None,
        }
    }

    /// The nonlinearity variant.
    pub fn kind(&self) -> SaturatingKind {
        self.kind
    }
}

impl Layer for Saturating {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v = match self.kind {
                SaturatingKind::Sigmoid => 1.0 / (1.0 + (-*v).exp()),
                SaturatingKind::Tanh => v.tanh(),
            };
        }
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            y.len(),
            grad_out.len(),
            "layer {}: gradient length mismatch",
            self.name
        );
        let mut dx = grad_out.clone();
        for (g, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            let dydx = match self.kind {
                SaturatingKind::Sigmoid => yv * (1.0 - yv),
                SaturatingKind::Tanh => 1.0 - yv * yv,
            };
            *g *= dydx;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;
    use cdma_tensor::Layout;

    fn input(seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(Shape4::new(2, 3, 4, 4), Layout::Nchw, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 400) as f32 / 100.0 - 2.0
        })
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Saturating::sigmoid("s");
        let x = input(1);
        let y = s.forward(&x, Mode::Train);
        assert!(y.as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
        let mut z = Saturating::sigmoid("z");
        let zero = Tensor::zeros(Shape4::new(1, 1, 1, 1), Layout::Nchw);
        assert_eq!(z.forward(&zero, Mode::Train).as_slice(), &[0.5]);
    }

    #[test]
    fn saturating_outputs_are_dense() {
        // The paper's applicability boundary: no zeros => nothing for ZVC.
        let x = input(3);
        for mut layer in [Saturating::sigmoid("s"), Saturating::tanh("t")] {
            let y = layer.forward(&x, Mode::Train);
            assert_eq!(
                y.density(),
                1.0,
                "{:?} produced zeros from non-zero input",
                layer.kind()
            );
        }
    }

    #[test]
    fn relu_vs_sigmoid_density_contrast() {
        use crate::Relu;
        let x = input(5); // symmetric around zero
        let relu_d = Relu::new("r").forward(&x, Mode::Train).density();
        let sig_d = Saturating::sigmoid("s").forward(&x, Mode::Train).density();
        assert!(relu_d < 0.65, "ReLU density {relu_d}");
        assert_eq!(sig_d, 1.0);
    }

    #[test]
    fn gradcheck_sigmoid() {
        let mut s = Saturating::sigmoid("s");
        gradcheck::check_input_gradient(&mut s, &input(7), 2e-2);
    }

    #[test]
    fn gradcheck_tanh() {
        let mut t = Saturating::tanh("t");
        gradcheck::check_input_gradient(&mut t, &input(9), 2e-2);
    }

    #[test]
    fn tanh_is_odd() {
        let mut t = Saturating::tanh("t");
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 2), Layout::Nchw, vec![1.5, -1.5]);
        let y = t.forward(&x, Mode::Train);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }
}
