use cdma_tensor::{Shape4, Tensor};

use crate::{Layer, LayerKind, Mode};

/// Rectified linear unit: `y = max(x, 0)`.
///
/// ReLU is the source of the activation sparsity the entire cDMA design
/// exploits (Section III: "such sparsity of activations \[is\] originated by
/// the extensive use of ReLU layers"). Roughly half the pre-activations of a
/// freshly-initialized layer are negative, so a new network starts near 50%
/// density — exactly what Fig. 4 shows for conv0.
#[derive(Debug)]
pub struct Relu {
    name: String,
    /// Mask of positive inputs from the last forward pass.
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: &str) -> Self {
        Relu {
            name: name.to_owned(),
            mask: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mut out = input.clone();
        let mask: Vec<bool> = input.as_slice().iter().map(|&v| v > 0.0).collect();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "layer {}: gradient length mismatch",
            self.name
        );
        let mut dx = grad_out.clone();
        for (g, &keep) in dx.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *g = 0.0;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_tensor::Layout;

    #[test]
    fn forward_thresholds_negatives() {
        let mut relu = Relu::new("r");
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 1, 4),
            Layout::Nchw,
            vec![-2.0, 0.0, 3.0, -0.5],
        );
        let y = relu.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = Relu::new("r");
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 1, 4),
            Layout::Nchw,
            vec![-2.0, 1.0, 3.0, -0.5],
        );
        let _ = relu.forward(&x, Mode::Train);
        let g = Tensor::from_vec(
            Shape4::new(1, 1, 1, 4),
            Layout::Nchw,
            vec![1.0, 1.0, 1.0, 1.0],
        );
        let dx = relu.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn symmetric_input_yields_half_density() {
        // The statistical root of the paper's "conv0 is always ~50% dense".
        let mut relu = Relu::new("r");
        let x = Tensor::from_fn(Shape4::new(1, 8, 16, 16), Layout::Nchw, |_, c, h, w| {
            // Zero-mean, symmetric pattern.
            (((c * 31 + h * 17 + w * 7) % 101) as f32) - 50.0
        });
        let y = relu.forward(&x, Mode::Train);
        let d = y.density();
        assert!((d - 0.5).abs() < 0.02, "density {d}");
    }

    #[test]
    fn zero_input_gets_zero_gradient() {
        // Subgradient choice at x == 0 is 0, matching Caffe.
        let mut relu = Relu::new("r");
        let x = Tensor::zeros(Shape4::new(1, 1, 1, 2), Layout::Nchw);
        let _ = relu.forward(&x, Mode::Train);
        let g = Tensor::full(Shape4::new(1, 1, 1, 2), Layout::Nchw, 5.0);
        assert_eq!(relu.backward(&g).as_slice(), &[0.0, 0.0]);
    }
}
