use cdma_tensor::{Layout, Shape4, Tensor};

use crate::{Layer, LayerKind, Mode, ParamRef, WeightInit};

/// Fully-connected (classifier) layer: `y = W·x + b` over the flattened
/// per-image activations.
///
/// The paper's networks end in FC layers whose outputs are the sparsest in
/// the whole network ("fully-connected layers generally exhibiting much
/// higher sparsity than the convolutional layers", Section IV-A) — their
/// activations respond only to a handful of classes.
#[derive(Debug)]
pub struct FullyConnected {
    name: String,
    in_features: usize,
    out_features: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    w_grads: Vec<f32>,
    b_grads: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl FullyConnected {
    /// Creates an FC layer with Xavier initialization.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(name: &str, in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "feature counts must be positive"
        );
        let mut weights = vec![0f32; out_features * in_features];
        WeightInit::Xavier.fill(&mut weights, in_features, out_features, seed);
        FullyConnected {
            name: name.to_owned(),
            in_features,
            out_features,
            w_grads: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; out_features],
            b_grads: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Input feature count (`C·H·W` of the incoming activation maps).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for FullyConnected {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::FullyConnected
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        assert_eq!(
            input.per_image(),
            self.in_features,
            "layer {}: expected {} input features, got {} ({})",
            self.name,
            self.in_features,
            input.per_image(),
            input
        );
        Shape4::fc(input.n, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let s = input.shape();
        let os = self.output_shape(s);
        let xs = input.as_slice();
        let mut y = Tensor::zeros(os, Layout::Nchw);
        {
            let ys = y.as_mut_slice();
            for n in 0..s.n {
                let xrow = &xs[n * self.in_features..(n + 1) * self.in_features];
                let yrow = &mut ys[n * self.out_features..(n + 1) * self.out_features];
                for (o, yv) in yrow.iter_mut().enumerate() {
                    let wrow = &self.weights[o * self.in_features..(o + 1) * self.in_features];
                    let mut acc = self.bias[o];
                    for (x, w) in xrow.iter().zip(wrow) {
                        acc += x * w;
                    }
                    *yv = acc;
                }
            }
        }
        self.cached_input = Some(input.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let s = x.shape();
        assert_eq!(
            grad_out.shape(),
            self.output_shape(s),
            "layer {}: gradient shape mismatch",
            self.name
        );
        let xs = x.as_slice();
        let gs = grad_out.as_slice();
        let mut dx = Tensor::zeros(s, Layout::Nchw);
        let dxs = dx.as_mut_slice();
        for n in 0..s.n {
            let xrow = &xs[n * self.in_features..(n + 1) * self.in_features];
            let grow = &gs[n * self.out_features..(n + 1) * self.out_features];
            let dxrow = &mut dxs[n * self.in_features..(n + 1) * self.in_features];
            for (o, &g) in grow.iter().enumerate() {
                self.b_grads[o] += g;
                if g == 0.0 {
                    continue;
                }
                let wrow = &self.weights[o * self.in_features..(o + 1) * self.in_features];
                let wgrow = &mut self.w_grads[o * self.in_features..(o + 1) * self.in_features];
                for i in 0..self.in_features {
                    wgrow[i] += g * xrow[i];
                    dxrow[i] += g * wrow[i];
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef {
                values: &mut self.weights,
                grads: &mut self.w_grads,
            },
            ParamRef {
                values: &mut self.bias,
                grads: &mut self.b_grads,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.w_grads.iter_mut().for_each(|g| *g = 0.0);
        self.b_grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    fn input(seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(Shape4::new(3, 2, 2, 2), Layout::Nchw, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f32 / 50.0 - 1.0
        })
    }

    #[test]
    fn output_shape_flattens() {
        let fc = FullyConnected::new("fc", 8, 5, 0);
        assert_eq!(fc.output_shape(Shape4::new(3, 2, 2, 2)), Shape4::fc(3, 5));
    }

    #[test]
    fn identity_weights_pass_features() {
        let mut fc = FullyConnected::new("fc", 4, 4, 0);
        {
            let mut params = fc.params_mut();
            params[0].values.iter_mut().for_each(|w| *w = 0.0);
            for i in 0..4 {
                params[0].values[i * 4 + i] = 1.0;
            }
        }
        let x = Tensor::from_vec(
            Shape4::new(1, 4, 1, 1),
            Layout::Nchw,
            vec![1.0, 2.0, 3.0, 4.0],
        );
        let y = fc.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gradcheck_input() {
        let mut fc = FullyConnected::new("fc", 8, 6, 21);
        gradcheck::check_input_gradient(&mut fc, &input(4), 2e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut fc = FullyConnected::new("fc", 8, 6, 23);
        gradcheck::check_param_gradient(&mut fc, &input(6), 2e-2);
    }

    #[test]
    fn batch_rows_are_independent() {
        let mut fc = FullyConnected::new("fc", 8, 3, 31);
        let x = input(8);
        let y_full = fc.forward(&x, Mode::Train);
        // Forward one image alone: same result as its batch row.
        let x0 = Tensor::from_vec(
            Shape4::new(1, 2, 2, 2),
            Layout::Nchw,
            x.as_slice()[..8].to_vec(),
        );
        let y0 = fc.forward(&x0, Mode::Train);
        for i in 0..3 {
            assert!((y_full.as_slice()[i] - y0.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_feature_count_rejected() {
        let fc = FullyConnected::new("fc", 8, 3, 0);
        let _ = fc.output_shape(Shape4::new(1, 3, 2, 2));
    }
}
