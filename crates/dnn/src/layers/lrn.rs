use cdma_tensor::{Layout, Shape4, Tensor};

use crate::{Layer, LayerKind, Mode};

/// Local response normalization across channels (AlexNet's `norm` layers).
///
/// `y_i = x_i / (k + (α/n)·Σ_j x_j²)^β` where the sum runs over the `n`
/// channels centred on `i`. LRN keeps zero activations zero (it is a
/// positive scaling), so it is density-neutral — which is why the paper's
/// Fig. 4 can omit it while still accounting for every sparsity transition.
#[derive(Debug)]
pub struct Lrn {
    name: String,
    /// Window size `n` (channels).
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cached: Option<LrnCache>,
}

#[derive(Debug)]
struct LrnCache {
    input: Tensor,
    /// `scale_i = k + (α/n)·Σ x_j²` per element.
    scale: Vec<f32>,
}

impl Lrn {
    /// Creates an LRN layer with AlexNet's hyper-parameters (`n`=5,
    /// `α`=1e-4, `β`=0.75, `k`=2 — Krizhevsky et al. 2012).
    pub fn alexnet(name: &str) -> Self {
        Lrn::new(name, 5, 1e-4, 0.75, 2.0)
    }

    /// Creates an LRN layer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or even (the window must be centred).
    pub fn new(name: &str, size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        assert!(size % 2 == 1, "LRN window must be odd, got {size}");
        Lrn {
            name: name.to_owned(),
            size,
            alpha,
            beta,
            k,
            cached: None,
        }
    }
}

impl Layer for Lrn {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Norm
    }

    fn output_shape(&self, input: Shape4) -> Shape4 {
        input
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let s = input.shape();
        let xs = input.as_slice();
        let (sn, sc, sh, _) = Layout::Nchw.strides(s);
        let half = self.size / 2;
        let mut scale = vec![0f32; input.len()];
        let mut y = Tensor::zeros(s, Layout::Nchw);
        {
            let ys = y.as_mut_slice();
            for n in 0..s.n {
                for h in 0..s.h {
                    for w in 0..s.w {
                        let pix = n * sn + h * sh + w;
                        for c in 0..s.c {
                            let lo = c.saturating_sub(half);
                            let hi = (c + half).min(s.c - 1);
                            let mut sum = 0f32;
                            for j in lo..=hi {
                                let v = xs[pix + j * sc];
                                sum += v * v;
                            }
                            let sc_v = self.k + self.alpha / self.size as f32 * sum;
                            let idx = pix + c * sc;
                            scale[idx] = sc_v;
                            ys[idx] = xs[idx] * sc_v.powf(-self.beta);
                        }
                    }
                }
            }
        }
        self.cached = Some(LrnCache {
            input: input.clone(),
            scale,
        });
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cached
            .as_ref()
            .expect("backward called before forward");
        let s = cache.input.shape();
        assert_eq!(
            grad_out.shape(),
            s,
            "layer {}: gradient shape mismatch",
            self.name
        );
        let xs = cache.input.as_slice();
        let gs = grad_out.as_slice();
        let scale = &cache.scale;
        let (sn, sc, sh, _) = Layout::Nchw.strides(s);
        let half = self.size / 2;
        let coeff = 2.0 * self.alpha * self.beta / self.size as f32;
        let mut dx = Tensor::zeros(s, Layout::Nchw);
        let dxs = dx.as_mut_slice();
        for n in 0..s.n {
            for h in 0..s.h {
                for w in 0..s.w {
                    let pix = n * sn + h * sh + w;
                    // For each output channel i, distribute its gradient to
                    // every input channel j inside its window.
                    for i in 0..s.c {
                        let ii = pix + i * sc;
                        let g = gs[ii];
                        if g == 0.0 {
                            continue;
                        }
                        let sc_i = scale[ii];
                        let common = g * sc_i.powf(-self.beta - 1.0) * coeff * xs[ii];
                        dxs[ii] += g * sc_i.powf(-self.beta);
                        let lo = i.saturating_sub(half);
                        let hi = (i + half).min(s.c - 1);
                        for j in lo..=hi {
                            let jj = pix + j * sc;
                            dxs[jj] -= common * xs[jj];
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    fn input(seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(Shape4::new(2, 7, 3, 3), Layout::Nchw, |_, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f32 / 25.0 - 2.0
        })
    }

    #[test]
    fn zeros_stay_zero() {
        let mut lrn = Lrn::alexnet("n");
        let mut x = input(1);
        x.as_mut_slice()[..20].iter_mut().for_each(|v| *v = 0.0);
        let y = lrn.forward(&x, Mode::Train);
        assert!(y.as_slice()[..20].iter().all(|&v| v == 0.0));
        assert_eq!(x.count_nonzero(), y.count_nonzero());
    }

    #[test]
    fn normalization_shrinks_large_responses() {
        let mut lrn = Lrn::new("n", 3, 1.0, 0.75, 1.0);
        let x = Tensor::full(Shape4::new(1, 3, 1, 1), Layout::Nchw, 3.0);
        let y = lrn.forward(&x, Mode::Train);
        // scale = 1 + (1/3)*sum(9,9[,9]) — centre channel sees all three.
        assert!(y.as_slice().iter().all(|&v| v < 3.0 && v > 0.0));
        // Centre channel has the largest window sum, so smallest output.
        assert!(y.get(0, 1, 0, 0) < y.get(0, 0, 0, 0));
    }

    #[test]
    fn unit_params_identity_when_alpha_zero() {
        let mut lrn = Lrn::new("n", 3, 0.0, 0.75, 1.0);
        let x = input(5);
        let y = lrn.forward(&x, Mode::Train);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradcheck_lrn() {
        // Larger alpha so the normalization term actually matters.
        let mut lrn = Lrn::new("n", 3, 0.1, 0.75, 2.0);
        gradcheck::check_input_gradient(&mut lrn, &input(7), 2e-2);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_window_rejected() {
        let _ = Lrn::new("n", 4, 1.0, 0.75, 1.0);
    }
}
