use cdma_tensor::{Shape4, Tensor};

/// Whether the network is training (dropout active, statistics updated) or
/// evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training pass: stochastic layers (dropout) are active.
    Train,
    /// Inference pass: deterministic behaviour.
    Eval,
}

/// Coarse layer taxonomy matching Section II-A of the paper. Used by the
/// offload policies (vDNN can offload only CONV-layer inputs) and the
/// compute-time model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolutional layer.
    Conv,
    /// Activation layer (ReLU here).
    Activation,
    /// Pooling layer.
    Pool,
    /// Fully-connected / classifier layer.
    FullyConnected,
    /// Local response normalization.
    Norm,
    /// Dropout.
    Dropout,
    /// Structural fan-out (inception module).
    Composite,
}

/// A mutable borrow of one parameter group (weights or biases) and its
/// gradient accumulator, handed to the optimizer.
#[derive(Debug)]
pub struct ParamRef<'a> {
    /// Parameter values, updated in place by the optimizer.
    pub values: &'a mut [f32],
    /// Gradient of the loss w.r.t. `values`, filled by `backward`.
    pub grads: &'a mut [f32],
}

/// A differentiable network layer.
///
/// Layers own their parameters and cache whatever they need from `forward`
/// to compute `backward`. The contract mirrors the layer-wise serialized
/// execution the paper describes (Section II-B): `backward` must be called
/// after `forward` with a gradient matching the forward output shape, and
/// returns the gradient w.r.t. the forward input.
pub trait Layer: std::fmt::Debug {
    /// Layer instance name (e.g. `"conv0"`), unique within a network.
    fn name(&self) -> &str;

    /// The layer taxonomy bucket.
    fn kind(&self) -> LayerKind;

    /// Output shape as a function of input shape.
    ///
    /// # Panics
    ///
    /// Implementations panic if the input shape is incompatible (wrong
    /// channel count, spatial extent smaller than the kernel, ...).
    fn output_shape(&self, input: Shape4) -> Shape4;

    /// Runs the layer forward, caching state for `backward`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates gradients; returns the gradient w.r.t. the last forward
    /// input. Parameter gradients accumulate into [`Layer::params_mut`]
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched gradient
    /// shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Parameter groups for the optimizer; empty for stateless layers.
    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Zeroes all gradient accumulators (called once per minibatch).
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Numerical gradient checking shared by the layer test modules.

    use super::*;
    use cdma_tensor::Layout;

    /// Checks `d loss / d input` of `layer` against central differences,
    /// where the pseudo-loss is a fixed random projection of the output.
    pub(crate) fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tol: f64) {
        let out = layer.forward(input, Mode::Train);
        // Pseudo-loss L = sum(w_i * y_i) with deterministic weights.
        let weights: Vec<f32> = (0..out.len())
            .map(|i| (((i * 2654435761) % 1000) as f32 / 1000.0) - 0.5)
            .collect();
        let grad_out = Tensor::from_vec(out.shape(), Layout::Nchw, weights.clone());
        let analytic = layer.backward(&grad_out);

        let eps = 1e-3f32;
        let slice = input.as_slice();
        // Probe a bounded number of coordinates to keep tests fast.
        let stride = (slice.len() / 64).max(1);
        for idx in (0..slice.len()).step_by(stride) {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let lp = loss_of(layer, &plus, &weights);
            let lm = loss_of(layer, &minus, &weights);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let got = analytic.as_slice()[idx] as f64;
            assert!(
                (numeric - got).abs() <= tol * (1.0 + numeric.abs().max(got.abs())),
                "input grad mismatch at {idx}: numeric {numeric}, analytic {got}"
            );
        }
    }

    /// Checks `d loss / d params` against central differences.
    pub(crate) fn check_param_gradient(layer: &mut dyn Layer, input: &Tensor, tol: f64) {
        let out = layer.forward(input, Mode::Train);
        let weights: Vec<f32> = (0..out.len())
            .map(|i| (((i * 2654435761) % 1000) as f32 / 1000.0) - 0.5)
            .collect();
        let grad_out = Tensor::from_vec(out.shape(), Layout::Nchw, weights.clone());
        layer.zero_grads();
        let _ = layer.backward(&grad_out);
        // Snapshot analytic parameter gradients.
        let analytic: Vec<Vec<f32>> = layer
            .params_mut()
            .iter()
            .map(|p| p.grads.to_vec())
            .collect();

        let eps = 1e-3f32;
        for (gi, grads) in analytic.iter().enumerate() {
            let stride = (grads.len() / 32).max(1);
            for idx in (0..grads.len()).step_by(stride) {
                perturb(layer, gi, idx, eps);
                let lp = loss_of(layer, input, &weights);
                perturb(layer, gi, idx, -2.0 * eps);
                let lm = loss_of(layer, input, &weights);
                perturb(layer, gi, idx, eps);
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let got = grads[idx] as f64;
                assert!(
                    (numeric - got).abs() <= tol * (1.0 + numeric.abs().max(got.abs())),
                    "param grad mismatch group {gi} idx {idx}: numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    fn perturb(layer: &mut dyn Layer, group: usize, idx: usize, delta: f32) {
        let mut params = layer.params_mut();
        params[group].values[idx] += delta;
    }

    fn loss_of(layer: &mut dyn Layer, input: &Tensor, weights: &[f32]) -> f64 {
        let out = layer.forward(input, Mode::Train);
        out.as_slice()
            .iter()
            .zip(weights)
            .map(|(&y, &w)| y as f64 * w as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_and_kind_are_plain_enums() {
        assert_ne!(Mode::Train, Mode::Eval);
        assert_eq!(LayerKind::Conv, LayerKind::Conv);
        assert_ne!(LayerKind::Conv, LayerKind::Pool);
    }
}
