//! Procedurally-generated image-classification dataset.
//!
//! The paper trains on ImageNet, which we cannot ship (see DESIGN.md). For
//! the *training-dynamics* experiments all that matters is that a ReLU CNN
//! learns a non-trivial classification task from scratch — the density
//! U-curve is a property of backpropagation + ReLU, not of photographs. This
//! module generates a deterministic K-class task where each class is a
//! distinct spatial pattern (stripes, checkerboards, Gaussian blobs, ramps)
//! under heavy noise, jitter and per-image contrast changes, so a small CNN
//! must genuinely learn feature detectors to separate the classes.

use cdma_tensor::{Layout, Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    classes: usize,
    channels: usize,
    size: usize,
    noise: f64,
    rng: StdRng,
}

impl SyntheticImages {
    /// Creates a generator for `classes` classes of `channels`×`size`×`size`
    /// images.
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2` or `size < 8` (patterns need room).
    pub fn new(classes: usize, channels: usize, size: usize, seed: u64) -> Self {
        assert!(classes >= 2, "need at least two classes, got {classes}");
        assert!(size >= 8, "images must be at least 8x8, got {size}");
        SyntheticImages {
            classes,
            channels,
            size,
            noise: 0.35,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape for a batch of `n`.
    pub fn shape(&self, n: usize) -> Shape4 {
        Shape4::new(n, self.channels, self.size, self.size)
    }

    /// Generates a batch of images with uniformly-sampled labels.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let labels: Vec<usize> = (0..n)
            .map(|_| self.rng.gen_range(0..self.classes))
            .collect();
        let images = self.batch_for_labels(&labels);
        (images, labels)
    }

    /// Generates one image per provided label.
    pub fn batch_for_labels(&mut self, labels: &[usize]) -> Tensor {
        let shape = self.shape(labels.len());
        let mut out = Tensor::zeros(shape, Layout::Nchw);
        for (n, &label) in labels.iter().enumerate() {
            assert!(label < self.classes, "label {label} out of range");
            // Per-image nuisance parameters the classifier must ignore.
            // Phase jitter is small — the ±2 px translation jitter already
            // shifts stripe phase by up to ±π/2, and unbounded phase would
            // wash the class signal out of the mean entirely.
            let phase = self.rng.gen_range(0.0..0.3);
            let contrast = self.rng.gen_range(0.6..1.4);
            let offset_h = self.rng.gen_range(-2i64..=2) as f64;
            let offset_w = self.rng.gen_range(-2i64..=2) as f64;
            for c in 0..self.channels {
                for h in 0..self.size {
                    for w in 0..self.size {
                        let sig = class_signal(
                            label,
                            self.classes,
                            c,
                            h as f64 + offset_h,
                            w as f64 + offset_w,
                            self.size as f64,
                            phase,
                        );
                        let noise = self.rng.gen_range(-1.0..1.0) * self.noise;
                        out.set(n, c, h, w, ((sig * contrast) + noise) as f32);
                    }
                }
            }
        }
        out
    }
}

/// Class-conditional signal in `[-1, 1]`.
fn class_signal(
    label: usize,
    classes: usize,
    channel: usize,
    h: f64,
    w: f64,
    size: f64,
    phase: f64,
) -> f64 {
    // Pattern family cycles with the label; parameters shift per label so
    // classes within a family remain separable.
    let family = label % 4;
    let variant = (label / 4 + 1) as f64;
    let freq = std::f64::consts::TAU * (1.0 + variant) / size;
    let ch_flip = if channel.is_multiple_of(2) { 1.0 } else { -1.0 };
    match family {
        0 => (freq * h + phase).sin() * ch_flip,
        1 => (freq * w + phase).sin() * ch_flip,
        2 => ((freq * (h + w) / 1.5 + phase).sin() * (freq * (h - w) / 1.5).cos()) * ch_flip,
        _ => {
            // Gaussian blob in a class-dependent quadrant.
            let q = label % classes;
            let cx = size * (0.3 + 0.4 * ((q % 2) as f64));
            let cy = size * (0.3 + 0.4 * (((q / 2) % 2) as f64));
            let r = size * 0.22 * variant.sqrt();
            let d2 = (h - cy).powi(2) + (w - cx).powi(2);
            (2.0 * (-d2 / (2.0 * r * r)).exp() - 1.0) * ch_flip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SyntheticImages::new(4, 1, 16, 9);
        let mut b = SyntheticImages::new(4, 1, 16, 9);
        let (xa, la) = a.batch(8);
        let (xb, lb) = b.batch(8);
        assert_eq!(la, lb);
        assert_eq!(xa.as_slice(), xb.as_slice());
    }

    #[test]
    fn labels_in_range_and_varied() {
        let mut gen = SyntheticImages::new(4, 1, 16, 5);
        let (_, labels) = gen.batch(64);
        assert!(labels.iter().all(|&l| l < 4));
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert!(distinct.len() >= 3, "sampling should hit most classes");
    }

    #[test]
    fn images_are_roughly_zero_mean() {
        let mut gen = SyntheticImages::new(4, 1, 16, 5);
        let (x, _) = gen.batch(32);
        let mean = x.as_slice().iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn classes_are_statistically_distinct() {
        // Mean images of two different classes should differ far more than
        // two batches of the same class.
        let mut gen = SyntheticImages::new(4, 1, 16, 7);
        let mean_image = |gen: &mut SyntheticImages, label: usize| -> Vec<f64> {
            let labels = vec![label; 64];
            let x = gen.batch_for_labels(&labels);
            let per = x.shape().per_image();
            let mut acc = vec![0f64; per];
            for n in 0..64 {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += x.as_slice()[n * per + i] as f64 / 64.0;
                }
            }
            acc
        };
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let c0a = mean_image(&mut gen, 0);
        let c0b = mean_image(&mut gen, 0);
        let c1 = mean_image(&mut gen, 1);
        let c2 = mean_image(&mut gen, 2);
        assert!(dist(&c0a, &c1) > 2.5 * dist(&c0a, &c0b));
        assert!(dist(&c1, &c2) > 2.5 * dist(&c0a, &c0b));
    }

    #[test]
    fn batch_for_labels_respects_order() {
        let mut gen = SyntheticImages::new(4, 2, 16, 3);
        let x = gen.batch_for_labels(&[0, 1, 2, 3]);
        assert_eq!(x.shape(), Shape4::new(4, 2, 16, 16));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_rejected() {
        let _ = SyntheticImages::new(1, 1, 16, 0);
    }
}
