use crate::ParamRef;

/// Stochastic gradient descent with momentum and weight decay — the paper's
/// training algorithm ("all networks are trained using stochastic gradient
/// descent with an initial learning rate of 0.01", Section VI).
#[derive(Debug)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    /// Velocity buffers, one per parameter group, allocated lazily on the
    /// first step (parameter group order is stable across steps).
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f64, momentum: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// The paper's setup: lr 0.01, momentum 0.9, light weight decay.
    pub fn paper_defaults() -> Self {
        Sgd::new(0.01, 0.9, 5e-4)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (used by the plateau schedule).
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Applies one update step to the given parameter groups.
    ///
    /// # Panics
    ///
    /// Panics if the group structure changes between steps.
    pub fn step(&mut self, mut params: Vec<ParamRef<'_>>) {
        if self.velocities.is_empty() {
            self.velocities = params.iter().map(|p| vec![0f32; p.values.len()]).collect();
        }
        assert_eq!(
            self.velocities.len(),
            params.len(),
            "parameter group count changed between steps"
        );
        for (group, vel) in params.iter_mut().zip(&mut self.velocities) {
            assert_eq!(
                vel.len(),
                group.values.len(),
                "parameter group size changed between steps"
            );
            for ((w, g), v) in group
                .values
                .iter_mut()
                .zip(group.grads.iter())
                .zip(vel.iter_mut())
            {
                let grad = *g as f64 + self.weight_decay * *w as f64;
                *v = (self.momentum * *v as f64 - self.lr * grad) as f32;
                *w += *v;
            }
        }
    }
}

/// Reduce-on-plateau learning-rate schedule, as in Section VI: "we manually
/// reduce the learning rate by a factor of 0.1 or 0.5 ... when the
/// validation error plateaus", terminating "when the validation accuracy
/// does not improve further beyond a learning rate smaller than 1e-5".
#[derive(Debug, Clone)]
pub struct PlateauSchedule {
    factor: f64,
    patience: usize,
    min_lr: f64,
    best: f64,
    since_best: usize,
}

impl PlateauSchedule {
    /// Creates a schedule that multiplies the lr by `factor` after
    /// `patience` observations without improvement, stopping below
    /// `min_lr`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is in `(0, 1)` and `patience > 0`.
    pub fn new(factor: f64, patience: usize, min_lr: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&factor) && factor > 0.0,
            "factor must be in (0, 1)"
        );
        assert!(patience > 0, "patience must be positive");
        PlateauSchedule {
            factor,
            patience,
            min_lr,
            best: f64::INFINITY,
            since_best: 0,
        }
    }

    /// The paper's setup: reduce by 0.1, stop below 1e-5.
    pub fn paper_defaults() -> Self {
        PlateauSchedule::new(0.1, 3, 1e-5)
    }

    /// Observes a validation loss (lower is better). Reduces the optimizer
    /// lr on plateau. Returns `true` when training should stop (lr has
    /// fallen below `min_lr`).
    pub fn observe(&mut self, validation_loss: f64, sgd: &mut Sgd) -> bool {
        if validation_loss < self.best - 1e-9 {
            self.best = validation_loss;
            self.since_best = 0;
            return false;
        }
        self.since_best += 1;
        if self.since_best >= self.patience {
            self.since_best = 0;
            let new_lr = sgd.lr() * self.factor;
            if new_lr < self.min_lr {
                return true;
            }
            sgd.set_lr(new_lr);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param_group<'a>(w: &'a mut [f32], g: &'a mut [f32]) -> Vec<ParamRef<'a>> {
        vec![ParamRef {
            values: w,
            grads: g,
        }]
    }

    #[test]
    fn plain_sgd_descends_gradient() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        let mut w = vec![1.0f32];
        let mut g = vec![2.0f32];
        sgd.step(param_group(&mut w, &mut g));
        assert!((w[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut w = vec![0.0f32];
        let mut g = vec![1.0f32];
        sgd.step(param_group(&mut w, &mut g));
        let w1 = w[0]; // -0.1
        sgd.step(param_group(&mut w, &mut g));
        let delta2 = w[0] - w1; // -0.1 - 0.09 = -0.19
        assert!((w1 + 0.1).abs() < 1e-6);
        assert!((delta2 + 0.19).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        let mut w = vec![1.0f32];
        let mut g = vec![0.0f32];
        sgd.step(param_group(&mut w, &mut g));
        assert!((w[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        // min (w-3)^2, gradient 2(w-3).
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut w = vec![0.0f32];
        for _ in 0..200 {
            let mut g = vec![2.0 * (w[0] - 3.0)];
            sgd.step(param_group(&mut w, &mut g));
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn plateau_schedule_reduces_then_stops() {
        let mut sgd = Sgd::new(0.01, 0.0, 0.0);
        let mut sched = PlateauSchedule::new(0.1, 2, 1e-5);
        assert!(!sched.observe(1.0, &mut sgd)); // improvement
        assert!(!sched.observe(1.0, &mut sgd)); // plateau 1
        assert!(!sched.observe(1.0, &mut sgd)); // plateau 2 -> reduce
        assert!((sgd.lr() - 1e-3).abs() < 1e-12);
        assert!(!sched.observe(1.0, &mut sgd));
        assert!(!sched.observe(1.0, &mut sgd)); // -> 1e-4
        assert!((sgd.lr() - 1e-4).abs() < 1e-12);
        assert!(!sched.observe(1.0, &mut sgd));
        assert!(!sched.observe(1.0, &mut sgd)); // -> 1e-5
        assert!(!sched.observe(1.0, &mut sgd));
        // Next reduction would go below min_lr: stop.
        assert!(sched.observe(1.0, &mut sgd));
    }

    #[test]
    fn improvement_resets_patience() {
        let mut sgd = Sgd::new(0.01, 0.0, 0.0);
        let mut sched = PlateauSchedule::new(0.5, 2, 1e-5);
        assert!(!sched.observe(1.0, &mut sgd));
        assert!(!sched.observe(1.0, &mut sgd)); // plateau 1
        assert!(!sched.observe(0.5, &mut sgd)); // improvement resets
        assert!(!sched.observe(0.5, &mut sgd)); // plateau 1
        assert!((sgd.lr() - 0.01).abs() < 1e-12, "no reduction yet");
    }

    #[test]
    #[should_panic(expected = "group count changed")]
    fn changing_groups_rejected() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        let mut w = vec![1.0f32];
        let mut g = vec![1.0f32];
        sgd.step(param_group(&mut w, &mut g));
        sgd.step(Vec::new());
    }
}
