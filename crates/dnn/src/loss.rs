use cdma_tensor::{Layout, Tensor};

/// Fused softmax + cross-entropy loss over class logits.
///
/// This is the paper's "loss function ... defined to calculate the magnitude
/// of \[the\] error between classification and ground truth, deriving the
/// gradients of the loss function with respect to the final layer's output"
/// (Section II-B). The backward pass produces the `dY` that backpropagation
/// then pushes through the network right-to-left.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftmaxCrossEntropy {
    _private: (),
}

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy::default()
    }

    /// Computes mean cross-entropy loss and the gradient w.r.t. the logits.
    ///
    /// `logits` must be shaped `(N, classes, 1, 1)`; `labels[n]` is the
    /// ground-truth class of image `n`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
        let s = logits.shape();
        assert_eq!(s.h * s.w, 1, "logits must be (N, classes, 1, 1), got {s}");
        assert_eq!(s.n, labels.len(), "one label per image required");
        let classes = s.c;
        let xs = logits.as_slice();
        let mut grad = Tensor::zeros(s, Layout::Nchw);
        let gs = grad.as_mut_slice();
        let mut total = 0f64;
        for (n, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range 0..{classes}");
            let row = &xs[n * classes..(n + 1) * classes];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
            let sum: f64 = exps.iter().sum();
            let p_label = exps[label] / sum;
            total += -(p_label.max(1e-30)).ln();
            let grow = &mut gs[n * classes..(n + 1) * classes];
            for (c, g) in grow.iter_mut().enumerate() {
                let p = exps[c] / sum;
                *g = ((p - if c == label { 1.0 } else { 0.0 }) / labels.len() as f64) as f32;
            }
        }
        (total / labels.len() as f64, grad)
    }

    /// Fraction of images whose arg-max logit equals the label (top-1
    /// accuracy, the metric of the paper's Table I).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn accuracy(&self, logits: &Tensor, labels: &[usize]) -> f64 {
        let s = logits.shape();
        assert_eq!(s.n, labels.len(), "one label per image required");
        let classes = s.c;
        let xs = logits.as_slice();
        let mut correct = 0usize;
        for (n, &label) in labels.iter().enumerate() {
            let row = &xs[n * classes..(n + 1) * classes];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row");
            if argmax == label {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }
}

/// Convenience: uniform-logits loss is `ln(classes)`, the paper's Fig. 7
/// starting point (`ln(1000) ≈ 6.9` for ImageNet).
pub fn chance_loss(classes: usize) -> f64 {
    (classes as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_tensor::Shape4;

    fn logits(vals: &[f32], classes: usize) -> Tensor {
        Tensor::from_vec(
            Shape4::fc(vals.len() / classes, classes),
            Layout::Nchw,
            vals.to_vec(),
        )
    }

    #[test]
    fn uniform_logits_give_chance_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[0.0; 10], 10);
        let (l, _) = loss.loss_and_grad(&x, &[3]);
        assert!((l - chance_loss(10)).abs() < 1e-9);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[10.0, 0.0, 0.0], 3);
        let (l, _) = loss.loss_and_grad(&x, &[0]);
        assert!(l < 1e-3, "loss {l}");
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[1.0, 2.0, 3.0], 3);
        let (_, g) = loss.loss_and_grad(&x, &[2]);
        let sum: f32 = g.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6, "gradient rows sum to zero");
        // True-class gradient is negative, others positive.
        assert!(g.as_slice()[2] < 0.0);
        assert!(g.as_slice()[0] > 0.0 && g.as_slice()[1] > 0.0);
    }

    #[test]
    fn gradient_matches_numeric() {
        let loss = SoftmaxCrossEntropy::new();
        let vals = [0.3f32, -1.2, 0.7, 2.0, -0.5, 0.1];
        let x = logits(&vals, 3);
        let labels = [1usize, 0];
        let (_, g) = loss.loss_and_grad(&x, &labels);
        let eps = 1e-3f32;
        for i in 0..vals.len() {
            let mut plus = vals;
            plus[i] += eps;
            let mut minus = vals;
            minus[i] -= eps;
            let (lp, _) = loss.loss_and_grad(&logits(&plus, 3), &labels);
            let (lm, _) = loss.loss_and_grad(&logits(&minus, 3), &labels);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (numeric - g.as_slice()[i] as f64).abs() < 1e-4,
                "idx {i}: numeric {numeric} vs {}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[1.0, 0.0, 0.0, 5.0, 0.0, 9.0], 3);
        assert_eq!(loss.accuracy(&x, &[0, 2]), 1.0);
        assert_eq!(loss.accuracy(&x, &[1, 1]), 0.0);
        assert_eq!(loss.accuracy(&x, &[0, 1]), 0.5);
    }

    #[test]
    fn numerically_stable_for_huge_logits() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[1e4, -1e4, 0.0], 3);
        let (l, g) = loss.loss_and_grad(&x, &[0]);
        assert!(l.is_finite() && l < 1e-3);
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn bad_label_rejected() {
        let loss = SoftmaxCrossEntropy::new();
        let x = logits(&[0.0; 3], 3);
        let _ = loss.loss_and_grad(&x, &[5]);
    }
}
