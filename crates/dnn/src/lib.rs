//! # cdma-dnn — a from-scratch CPU DNN training framework
//!
//! The cDMA paper's characterization (Section IV) rests on *real* training
//! dynamics: activation density falls sharply at the start of training and
//! recovers in a U-shape as accuracy improves. To reproduce that genuinely —
//! not just assert it — this crate implements the full training stack the
//! paper's workloads use, on the CPU:
//!
//! * layers: [`Conv2d`] (direct and im2col-GEMM paths, cross-checked),
//!   [`Relu`], [`Pool`] (max/avg), [`FullyConnected`], [`Lrn`], [`Dropout`],
//!   [`Parallel`] (inception-style fan-out + channel concat);
//! * [`SoftmaxCrossEntropy`] loss;
//! * [`Sgd`] with momentum, weight decay and the paper's
//!   reduce-on-plateau learning-rate schedule (Section VI);
//! * [`Sequential`] networks with density probes after every layer;
//! * a [`synthetic`] procedurally-generated image-classification dataset, so
//!   small networks can actually be trained end-to-end in tests and
//!   examples.
//!
//! Backward passes are verified against numerical gradients in the test
//! suite. Compute uses the NCHW layout throughout (Caffe's layout, which the
//! paper also adopts for its evaluation).
//!
//! ```
//! use cdma_dnn::{Conv2d, Layer, Mode, Relu, Sequential};
//! use cdma_tensor::{Layout, Shape4, Tensor};
//!
//! let mut net = Sequential::new();
//! net.push(Conv2d::new("conv0", 1, 4, 3, 1, 1, 7));
//! net.push(Relu::new("relu0"));
//! let x = Tensor::full(Shape4::new(2, 1, 8, 8), Layout::Nchw, 1.0);
//! let y = net.forward(&x, Mode::Train);
//! assert_eq!(y.shape(), Shape4::new(2, 4, 8, 8));
//! ```

#![deny(missing_docs)]

mod graph;
mod init;
mod layer;
mod layers;
mod loss;
mod optimizer;
pub mod synthetic;
mod train;

pub use graph::{Parallel, Sequential};
pub use init::WeightInit;
pub use layer::{Layer, LayerKind, Mode, ParamRef};
pub use layers::activation_fns::{Saturating, SaturatingKind};
pub use layers::conv::Conv2d;
pub use layers::dropout::Dropout;
pub use layers::fc::FullyConnected;
pub use layers::lrn::Lrn;
pub use layers::pool::{Pool, PoolKind};
pub use layers::relu::Relu;
pub use loss::{chance_loss, SoftmaxCrossEntropy};
pub use optimizer::{PlateauSchedule, Sgd};
pub use train::{DensityTrace, TrainReport, Trainer};
