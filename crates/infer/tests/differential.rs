//! Differential suite: the CSC weight store and the serve-pool kernel
//! against independent reimplementations.
//!
//! Three pins:
//!
//! 1. **Byte identity** — every [`CscMatrix`] column is bit-for-bit the
//!    stream the raw [`Csc`] codec emits for the same dense column, and
//!    decompressing it recovers the dense column exactly, across the
//!    model zoo's FC layer shapes x densities.
//! 2. **Matvec** — the sparse matvec agrees within 1e-6 with an
//!    independently-written dense oracle (different loop order, f64
//!    accumulation), and the PE workload slicing conserves every
//!    column's nonzeros at every PE count.
//! 3. **Pool sharing** — an inference tenant and a compress tenant run
//!    through the same virtual-time server, and the run is a pure
//!    function of the seed (rerun bit-identical).

use cdma_compress::{Algorithm, Compressor, Csc};
use cdma_infer::{column_seed, fc_weight_dims, fill_weights, CscMatrix, InferKernel, PeWorkload};
use cdma_models::zoo;
use cdma_serve::{run_virtual_with_kernel, ServerConfig, ServiceModel, TenantLoad, TenantSpec};

const DENSITIES: [f64; 2] = [0.05, 0.25];
const PE_COUNTS: [usize; 3] = [8, 33, 64];
/// Columns sampled per layer (full row count is kept; columns are
/// independent, so a strided sample exercises the same code paths as the
/// full layer at a fraction of the cost).
const SAMPLE_COLS: usize = 64;

/// Every distinct FC weight shape in the zoo.
fn zoo_fc_shapes() -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    for net in zoo::all_networks() {
        for layer in net.layers() {
            if let Some(shape) = fc_weight_dims(layer) {
                if !shapes.contains(&shape) {
                    shapes.push(shape);
                }
            }
        }
    }
    assert!(!shapes.is_empty(), "the zoo must have FC layers");
    shapes
}

/// The sampled column indices of a `cols`-wide layer.
fn sampled(cols: usize) -> Vec<usize> {
    let stride = (cols / SAMPLE_COLS.min(cols)).max(1);
    (0..cols).step_by(stride).take(SAMPLE_COLS).collect()
}

/// An independent dense matvec: row-major weights, per-row f64
/// accumulation — the opposite loop order and a wider accumulator than
/// `CscMatrix::matvec`.
fn oracle_matvec(rows: usize, cols: usize, w: &[f32], x: &[f32]) -> Vec<f32> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| w[r * cols + c] as f64 * x[c] as f64)
                .sum::<f64>() as f32
        })
        .collect()
}

#[test]
fn csc_streams_are_byte_identical_with_the_raw_codec_across_the_zoo() {
    let csc = Csc::new();
    for (shape_i, &(rows, cols)) in zoo_fc_shapes().iter().enumerate() {
        for (d_i, &density) in DENSITIES.iter().enumerate() {
            let seed = 0xD1F + (shape_i as u64) * 31 + d_i as u64;
            let picked = sampled(cols);
            let matrix = CscMatrix::from_columns(rows, picked.len(), |i, col| {
                fill_weights(column_seed(seed, picked[i]), density, col);
            });
            let mut dense_col = vec![0.0f32; rows];
            let mut stream = Vec::new();
            let mut recovered = Vec::new();
            for (i, &c) in picked.iter().enumerate() {
                fill_weights(column_seed(seed, c), density, &mut dense_col);
                csc.compress_into(&dense_col, &mut stream);
                assert_eq!(
                    matrix.column(i),
                    &stream[..],
                    "{rows}x{cols} @ {density}: column {c} stream diverged"
                );
                csc.decompress_into(&stream, rows, &mut recovered)
                    .expect("self-produced stream decodes");
                // Bit-for-bit, not approximate: the store must round-trip
                // payload bit patterns exactly.
                let want: Vec<u32> = dense_col.iter().map(|v| v.to_bits()).collect();
                let got: Vec<u32> = recovered.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    got, want,
                    "{rows}x{cols} @ {density}: column {c} round trip"
                );
            }
        }
    }
}

#[test]
fn sparse_matvec_matches_the_dense_oracle_across_the_zoo() {
    for (shape_i, &(rows, cols)) in zoo_fc_shapes().iter().enumerate() {
        for (d_i, &density) in DENSITIES.iter().enumerate() {
            let seed = 0xAB5 + (shape_i as u64) * 37 + d_i as u64;
            let picked = sampled(cols);
            let n = picked.len();
            let matrix = CscMatrix::from_columns(rows, n, |i, col| {
                fill_weights(column_seed(seed, picked[i]), density, col);
            });
            // Row-major dense copy built independently of `to_dense`.
            let mut w = vec![0.0f32; rows * n];
            let mut col = vec![0.0f32; rows];
            for (i, &c) in picked.iter().enumerate() {
                fill_weights(column_seed(seed, c), density, &mut col);
                for (r, &v) in col.iter().enumerate() {
                    w[r * n + i] = v;
                }
            }
            let mut x = vec![0.0f32; n];
            fill_weights(seed ^ 0xFEED, 0.5, &mut x);
            let got = matrix.matvec(&x);
            let want = oracle_matvec(rows, n, &w, &x);
            for r in 0..rows {
                assert!(
                    (got[r] - want[r]).abs() <= 1e-6 * want[r].abs().max(1.0),
                    "{rows}x{cols} @ {density}: y[{r}] = {} vs oracle {}",
                    got[r],
                    want[r]
                );
            }
            // The PE slicing conserves every column's nonzeros at every
            // array width.
            for &pes in &PE_COUNTS {
                let workload = PeWorkload::from_matrix(&matrix, pes);
                for c in 0..n {
                    let sliced: u32 = (0..pes).map(|k| workload.col_pe_nnz(c, k)).sum();
                    assert_eq!(
                        sliced as usize,
                        matrix.column_nonzeros(c).count(),
                        "{rows}x{cols} @ {density}, {pes} PEs: column {c} lost weights"
                    );
                }
            }
        }
    }
}

#[test]
fn infer_and_compress_tenants_share_one_pool_deterministically() {
    let (rows, cols) = (96, 128);
    let kernel = InferKernel::new(CscMatrix::synth(rows, cols, 0.1, 11));
    let cfg = ServerConfig {
        algorithm: Algorithm::Csc,
        ..ServerConfig::default()
    };
    let loads = vec![
        TenantLoad::new(TenantSpec::new("infer").weight(2.0), 30_000.0)
            .size_mix(vec![(cols, 1.0)])
            .inference(rows as u32),
        TenantLoad::new(TenantSpec::new("trainer"), 30_000.0),
    ];
    let run = || run_virtual_with_kernel(&cfg, &loads, 0.004, 7, ServiceModel::default(), &kernel);
    let report = run();
    for t in &report.tenants {
        assert!(t.counters.completed > 0, "{} starved", t.name);
        assert_eq!(t.counters.accepted, t.counters.completed, "{}", t.name);
        assert!(
            t.counters.wire_bytes < t.counters.uncompressed_bytes,
            "{} moved more than dense",
            t.name
        );
    }
    let again = run();
    assert_eq!(
        report.deterministic_summary_json(),
        again.deterministic_summary_json(),
        "virtual-time serving must be a pure function of the seed"
    );
    assert_eq!(report.latency_json(), again.latency_json());
}
