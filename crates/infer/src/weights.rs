//! Per-column CSC weight storage and the sparse matvec it serves.

use cdma_compress::{Compressor, Csc, CscNonzeros};
use cdma_models::LayerSpec;

/// A pruned FC weight matrix stored as one [`Csc`] stream per column,
/// packed back to back — EIE's weight memory. `y = W x` walks only the
/// retained entries, and the whole store is what a compressed weight
/// transfer would put on the wire.
///
/// ```
/// use cdma_infer::CscMatrix;
///
/// // W = [[1, 0], [0, 2], [0, 3]]  (3x2, row-major)
/// let w = CscMatrix::from_dense(3, 2, &[1.0, 0.0, 0.0, 2.0, 0.0, 3.0]);
/// assert_eq!(w.nnz(), 3);
/// assert_eq!(w.matvec(&[10.0, 100.0]), vec![10.0, 200.0, 300.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    nnz: u64,
    /// All column streams, back to back.
    bytes: Vec<u8>,
    /// `cols + 1` byte offsets into `bytes`.
    col_offsets: Vec<usize>,
}

impl CscMatrix {
    /// Compresses a dense row-major `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the slice is not `rows * cols` long or a dimension is
    /// zero.
    pub fn from_dense(rows: usize, cols: usize, dense: &[f32]) -> Self {
        assert_eq!(dense.len(), rows * cols, "dense slice must be rows*cols");
        let mut col = vec![0.0f32; rows];
        Self::from_columns(rows, cols, |c, out| {
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = dense[r * cols + c];
            }
            out.copy_from_slice(&col);
        })
    }

    /// Builds the store column by column: `fill(c, out)` writes column
    /// `c` into the `rows`-long scratch slice. Columns stream straight
    /// into the compressor, so a matrix far larger than its dense form
    /// never materializes densely (the zoo's 100 MB FC layers compress
    /// from a single reused column buffer).
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension.
    pub fn from_columns(rows: usize, cols: usize, mut fill: impl FnMut(usize, &mut [f32])) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let csc = Csc::new();
        let mut scratch = vec![0.0f32; rows];
        let mut bytes = Vec::new();
        let mut col_offsets = Vec::with_capacity(cols + 1);
        col_offsets.push(0);
        let mut nnz = 0u64;
        for c in 0..cols {
            fill(c, &mut scratch);
            nnz += scratch.iter().filter(|v| v.to_bits() != 0).count() as u64;
            csc.compress_append(&scratch, &mut bytes);
            col_offsets.push(bytes.len());
        }
        CscMatrix {
            rows,
            cols,
            nnz,
            bytes,
            col_offsets,
        }
    }

    /// A synthetic pruned matrix: each weight survives with probability
    /// `density` and draws a signed value from a seeded stream — pure
    /// function of `(rows, cols, density, seed)`, mirroring
    /// `cdma_serve::fill_activations` for weights.
    pub fn synth(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        Self::from_columns(rows, cols, |c, out| {
            fill_weights(column_seed(seed, c), density, out)
        })
    }

    /// Output features (matrix rows / result length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input features (matrix columns / input length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Retained (nonzero) weights across the whole matrix.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The CSC stream of column `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    pub fn column(&self, c: usize) -> &[u8] {
        &self.bytes[self.col_offsets[c]..self.col_offsets[c + 1]]
    }

    /// Iterates column `c`'s retained `(row, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range (the stream itself was produced
    /// by this store, so re-parsing it cannot fail).
    pub fn column_nonzeros(&self, c: usize) -> CscNonzeros<'_> {
        Csc::nonzeros(self.column(c)).expect("self-produced CSC stream parses")
    }

    /// Total compressed weight bytes: every column stream plus the EIE
    /// column-pointer table (`cols + 1` four-byte entries).
    pub fn compressed_bytes(&self) -> u64 {
        self.bytes.len() as u64 + 4 * (self.cols as u64 + 1)
    }

    /// Bytes of the dense `f32` form.
    pub fn dense_bytes(&self) -> u64 {
        4 * self.rows as u64 * self.cols as u64
    }

    /// Dense-to-compressed size ratio.
    pub fn ratio(&self) -> f64 {
        self.dense_bytes() as f64 / self.compressed_bytes() as f64
    }

    /// Decompresses back to the dense row-major form (the round-trip
    /// oracle; bit-exact).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut dense = vec![0.0f32; self.rows * self.cols];
        for c in 0..self.cols {
            for (r, v) in self.column_nonzeros(c) {
                dense[r * self.cols + c] = v;
            }
        }
        dense
    }

    /// `y = W x` over the compressed store, appending nothing: `y` is
    /// cleared and resized to [`CscMatrix::rows`]. Zero activations are
    /// skipped exactly (their column contributes nothing).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len()` equals [`CscMatrix::cols`].
    pub fn matvec_into(&self, x: &[f32], y: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "input length must match columns");
        y.clear();
        y.resize(self.rows, 0.0);
        for (c, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (r, w) in self.column_nonzeros(c) {
                y[r] += w * a;
            }
        }
    }

    /// Allocating form of [`CscMatrix::matvec_into`].
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::new();
        self.matvec_into(x, &mut y);
        y
    }

    /// Deep-compression weight sharing: quantizes the retained values to
    /// at most `levels` uniformly spaced centroids and re-encodes every
    /// column. With `levels <= 256` the per-column streams switch to
    /// codebook payloads whenever that is smaller, which is the point —
    /// EIE stores 4-bit codebook indices for exactly this reason.
    /// Centroids that would collide with the zero bit pattern are nudged
    /// to the smallest positive value so the pruned structure (and every
    /// nnz count) is preserved.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is zero.
    pub fn quantized(&self, levels: usize) -> CscMatrix {
        assert!(levels > 0, "need at least one quantization level");
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for c in 0..self.cols {
            for (_, v) in self.column_nonzeros(c) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo > hi {
            // No retained weights at all: nothing to quantize.
            return self.clone();
        }
        let step = ((hi - lo) as f64 / levels as f64).max(f64::MIN_POSITIVE);
        let quantize = |v: f32| -> f32 {
            let k = (((v - lo) as f64 / step) as usize).min(levels - 1);
            let q = (lo as f64 + (k as f64 + 0.5) * step) as f32;
            if q.to_bits() == 0 {
                f32::MIN_POSITIVE
            } else {
                q
            }
        };
        let mut scratch = vec![0.0f32; self.rows];
        Self::from_columns(self.rows, self.cols, |c, out| {
            scratch.iter_mut().for_each(|v| *v = 0.0);
            for (r, v) in self.column_nonzeros(c) {
                scratch[r] = quantize(v);
            }
            out.copy_from_slice(&scratch);
        })
    }
}

/// Mixes a per-column seed out of the matrix seed, so any column can be
/// regenerated independently (the analytic traffic sweeps regenerate
/// columns without building a store).
pub fn column_seed(seed: u64, col: usize) -> u64 {
    seed ^ (col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Fills `out` with synthetic pruned weights: a `density` fraction of
/// signed nonzero values, the rest exact zeros. Pure function of
/// `(seed, density, out.len())`.
pub fn fill_weights(seed: u64, density: f64, out: &mut [f32]) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        // splitmix64
        let mut z = state;
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let threshold = (density * (1u64 << 53) as f64) as u64;
    for slot in out.iter_mut() {
        let r = next() >> 11;
        *slot = if r >= threshold {
            0.0
        } else {
            // Signed weight in [-1, 1] \ {0}.
            let mag = (((r & 0xFFFF) + 1) as f32) / 65536.0;
            if r & 0x1_0000 == 0 {
                mag
            } else {
                -mag
            }
        };
    }
}

/// The weight-matrix dimensions `(rows, cols)` of a zoo FC layer —
/// `rows` its output features, `cols` its input features (recovered
/// from the parameter count, which includes one bias per output).
/// `None` for non-FC layers.
pub fn fc_weight_dims(layer: &LayerSpec) -> Option<(usize, usize)> {
    if !layer.is_fc() {
        return None;
    }
    let rows = layer.out.per_image();
    let cols = (layer.params / rows as u64) as usize - 1;
    Some((rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_models::zoo;

    #[test]
    fn roundtrips_dense_bit_for_bit() {
        let rows = 37;
        let cols = 23;
        let mut dense = vec![0.0f32; rows * cols];
        fill_weights(99, 0.3, &mut dense);
        dense[5] = -0.0; // retained: nonzero bit pattern
        dense[40] = f32::from_bits(0x7FC0_1234); // NaN payload
        let m = CscMatrix::from_dense(rows, cols, &dense);
        let back = m.to_dense();
        assert_eq!(back.len(), dense.len());
        for (a, b) in back.iter().zip(&dense) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            m.nnz(),
            dense.iter().filter(|v| v.to_bits() != 0).count() as u64
        );
    }

    #[test]
    fn matvec_matches_dense_oracle() {
        let rows = 64;
        let cols = 48;
        let m = CscMatrix::synth(rows, cols, 0.2, 7);
        let dense = m.to_dense();
        let mut x = vec![0.0f32; cols];
        fill_weights(13, 0.5, &mut x);
        let y = m.matvec(&x);
        for r in 0..rows {
            let want: f32 = (0..cols).map(|c| dense[r * cols + c] * x[c]).sum();
            assert!((y[r] - want).abs() <= 1e-6 * want.abs().max(1.0));
        }
    }

    #[test]
    fn sparse_store_is_much_smaller() {
        let m = CscMatrix::synth(512, 512, 0.1, 3);
        assert!(
            m.ratio() > 6.0,
            "10% density compresses ~8x, got {}",
            m.ratio()
        );
        let dense = CscMatrix::synth(512, 512, 1.0, 3);
        assert!(dense.ratio() < 1.0, "fully dense CSC carries overhead");
    }

    #[test]
    fn quantization_bounds_error_and_shrinks_store() {
        let m = CscMatrix::synth(128, 96, 0.25, 11);
        let q = m.quantized(16);
        assert_eq!(q.nnz(), m.nnz(), "quantization must preserve structure");
        assert!(
            q.compressed_bytes() < m.compressed_bytes(),
            "16 shared values switch columns to codebook payloads"
        );
        // Uniform quantization error is bounded by half a step.
        let (dm, dq) = (m.to_dense(), q.to_dense());
        let step = 2.0 / 16.0; // values span at most [-1, 1]
        for (a, b) in dm.iter().zip(&dq) {
            assert!((a - b).abs() <= step, "|{a} - {b}| > {step}");
        }
    }

    #[test]
    fn column_regeneration_matches_store() {
        let (rows, cols, density, seed) = (40, 17, 0.3, 21);
        let m = CscMatrix::synth(rows, cols, density, seed);
        let mut col = vec![0.0f32; rows];
        for c in 0..cols {
            fill_weights(column_seed(seed, c), density, &mut col);
            let nz: Vec<(usize, f32)> = m.column_nonzeros(c).collect();
            let want: Vec<(usize, f32)> = col
                .iter()
                .enumerate()
                .filter(|(_, v)| v.to_bits() != 0)
                .map(|(r, &v)| (r, v))
                .collect();
            assert_eq!(nz, want);
        }
    }

    #[test]
    fn zoo_fc_dims_recover_known_shapes() {
        let alexnet = zoo::alexnet();
        let dims: Vec<(usize, usize)> =
            alexnet.layers().iter().filter_map(fc_weight_dims).collect();
        assert_eq!(dims, vec![(4096, 9216), (4096, 4096), (1000, 4096)]);
        for net in zoo::all_networks() {
            for layer in net.layers().iter().filter(|l| l.is_fc()) {
                let (rows, cols) = fc_weight_dims(layer).unwrap();
                assert_eq!(((cols + 1) * rows) as u64, layer.params);
            }
        }
    }
}
