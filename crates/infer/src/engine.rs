//! The inference-engine axis: which sparsity the engine exploits.

/// How an inference run stores its weights and schedules its MACs — the
/// axis the `fig_inference` experiment sweeps, mirroring EIE's dense /
/// compressed comparison plus SparseNN's activation-sparsity extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InferEngine {
    /// Dense weights, every MAC executed: the GPU-style baseline. One
    /// weight column costs `ceil(rows / PEs)` cycles regardless of
    /// content.
    #[default]
    Dense,
    /// CSC-compressed weights (EIE): each PE walks only the retained
    /// entries of its row slice, so work per column is its nonzero
    /// count and speedup is bounded by inter-PE load imbalance.
    Csc,
    /// CSC weights *and* leading-nonzero detection over the input
    /// activations (SparseNN): zero activations are never broadcast, so
    /// whole columns of MACs disappear on top of weight sparsity.
    CscAct,
}

impl InferEngine {
    /// Every engine, dense baseline first — sweep order for experiments.
    pub const ALL: [InferEngine; 3] = [InferEngine::Dense, InferEngine::Csc, InferEngine::CscAct];

    /// Short label used in scenario strings, filters, and report rows.
    pub fn label(self) -> &'static str {
        match self {
            InferEngine::Dense => "dense",
            InferEngine::Csc => "csc",
            InferEngine::CscAct => "csc+act",
        }
    }

    /// Whether this engine reads CSC-compressed weight streams.
    pub fn compressed_weights(self) -> bool {
        !matches!(self, InferEngine::Dense)
    }

    /// Whether this engine skips zero input activations.
    pub fn skips_zero_activations(self) -> bool {
        matches!(self, InferEngine::CscAct)
    }
}

impl std::fmt::Display for InferEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for InferEngine {
    type Err = String;

    /// Parses a label as written by [`InferEngine::label`] (plus the
    /// punctuation-free spellings `cscact` / `csc-act`).
    ///
    /// ```
    /// use cdma_infer::InferEngine;
    ///
    /// for e in InferEngine::ALL {
    ///     assert_eq!(e.label().parse::<InferEngine>().unwrap(), e);
    /// }
    /// assert!("tpu".parse::<InferEngine>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Ok(InferEngine::Dense),
            "csc" => Ok(InferEngine::Csc),
            "csc+act" | "cscact" | "csc-act" => Ok(InferEngine::CscAct),
            other => Err(format!(
                "unknown inference engine '{other}' (expected dense, csc, or csc+act)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for e in InferEngine::ALL {
            assert_eq!(e.label().parse::<InferEngine>().unwrap(), e);
            assert_eq!(e.to_string(), e.label());
        }
        assert_eq!(
            "CSC-ACT".parse::<InferEngine>().unwrap(),
            InferEngine::CscAct
        );
        assert!("".parse::<InferEngine>().is_err());
    }

    #[test]
    fn capability_flags_match_engines() {
        assert!(!InferEngine::Dense.compressed_weights());
        assert!(InferEngine::Csc.compressed_weights());
        assert!(!InferEngine::Csc.skips_zero_activations());
        assert!(InferEngine::CscAct.skips_zero_activations());
    }
}
