//! # cdma-infer — compressed-sparse inference over the cDMA stack
//!
//! The rest of the workspace studies the compressing DMA engine on the
//! *training* path (offloading ReLU-sparse activations). This crate
//! opens the serving workload family: pruned fully-connected layers
//! whose **weights** are sparse too, following EIE (Han et al., ISCA
//! 2016) and SparseNN (Zhu et al., 2018):
//!
//! | EIE / SparseNN structure            | here                                     |
//! |-------------------------------------|------------------------------------------|
//! | CSC weights, 4-bit relative indices | [`cdma_compress::Csc`] + [`CscMatrix`]   |
//! | weight sharing / codebook           | [`CscMatrix::quantized`]                 |
//! | PE array, row-interleaved slices    | [`PeWorkload`] + [`PeArray`]             |
//! | activation broadcast FIFOs          | [`PeArray::fifo_depth`] backpressure     |
//! | leading-nonzero detection           | `skip_zeros` in [`PeArray::run`]         |
//! | load-imbalance-limited speedup      | [`PeTimeline::load_imbalance`]           |
//! | accelerator as a service            | [`InferKernel`] on the `cdma-serve` pool |
//!
//! Three layers:
//!
//! * [`CscMatrix`] ([`weights`]) — per-column CSC weight storage over
//!   the codec layer's [`cdma_compress::Csc`] streams, with a streaming
//!   column builder for zoo-sized layers, a bit-exact dense round-trip,
//!   sparse matvec, and deep-compression codebook quantization.
//! * [`PeArray`] ([`pe`]) — the cycle-level processing-element model:
//!   broadcast/FIFO/imbalance timing with per-PE busy intervals that
//!   feed the same Gantt-style reports as the link and pipeline models.
//! * [`InferKernel`] ([`kernel`]) — a `cdma_serve::JobKernel` that runs
//!   batched matvecs on the shared worker pool, so serving scenarios
//!   reuse admission control, fairness, and the zero-alloc buffer loop.
//!
//! The `fig_inference` experiment in `cdma-core` sweeps
//! [`InferEngine`]s (dense / CSC / CSC+activation-skipping) over the
//! model zoo's FC layers to reproduce the EIE-style speedup-vs-density
//! and traffic-reduction story on top of the paper's infrastructure.
//!
//! ```
//! use cdma_infer::{CscMatrix, InferEngine, PeArray, PeWorkload};
//!
//! // A 10%-dense pruned layer on a 16-PE array.
//! let w = CscMatrix::synth(256, 256, 0.1, 42);
//! let workload = PeWorkload::from_matrix(&w, 16);
//! let acts = vec![1.0f32; 256];
//! let arr = PeArray::new(16);
//! let t = arr.run(&workload, &acts, InferEngine::Csc.skips_zero_activations());
//! let speedup = arr.dense_cycles(256, 256) as f64 / t.cycles as f64;
//! assert!(speedup > 3.0, "sparsity wins, imbalance taxes: {speedup:.1}x");
//! assert!(w.ratio() > 6.0, "and the weights shrink {:.1}x", w.ratio());
//! ```

#![deny(missing_docs)]

mod engine;
pub mod kernel;
pub mod pe;
pub mod weights;

pub use engine::InferEngine;
pub use kernel::InferKernel;
pub use pe::{BusyIntervals, PeArray, PeTimeline, PeTrace, PeWorkload};
pub use weights::{column_seed, fc_weight_dims, fill_weights, CscMatrix};
