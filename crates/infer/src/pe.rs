//! The cycle-level processing-element array model.
//!
//! EIE's sparse matvec engine: N PEs each own a slice of the weight
//! matrix (row `r` lives on PE `r % N`), and a central unit broadcasts
//! one input activation — one matrix *column* — per cycle into every
//! PE's FIFO. Each PE drains its FIFO in order, spending one cycle per
//! retained weight of its slice of that column. Two hazards shape the
//! timeline, and both are modeled explicitly:
//!
//! * **FIFO backpressure** — the broadcaster stalls when any PE still
//!   has its copy of the activation from `fifo_depth` broadcasts ago in
//!   flight (Section VI of the EIE paper sizes these queues to smooth
//!   transient imbalance).
//! * **Load imbalance** — a PE whose slice is denser than its siblings'
//!   finishes columns late; the array's speedup over dense is bounded by
//!   the *maximum* per-PE work, not the mean. This is EIE's Fig. 9
//!   effect and the reason measured speedup trails `1 / density`.
//!
//! Leading-nonzero detection (SparseNN-style input sparsity) is the
//! `skip_zeros` switch of [`PeArray::run`]: zero activations are never
//! broadcast, so their columns vanish from the timeline entirely.

use crate::weights::CscMatrix;

/// Per-(column, PE) retained-weight counts — the only thing the timing
/// model needs to know about a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeWorkload {
    rows: usize,
    cols: usize,
    pes: usize,
    /// `cols * pes` counts, column-major: entry `c * pes + k` is the
    /// retained weights PE `k` holds of column `c`.
    nnz: Vec<u32>,
}

impl PeWorkload {
    /// Slices `matrix` across `pes` processing elements, row-interleaved
    /// (row `r` on PE `r % pes`) exactly as EIE distributes rows.
    ///
    /// # Panics
    ///
    /// Panics on a zero PE count.
    pub fn from_matrix(matrix: &CscMatrix, pes: usize) -> Self {
        assert!(pes > 0, "need at least one PE");
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let mut nnz = vec![0u32; cols * pes];
        for c in 0..cols {
            for (r, _) in matrix.column_nonzeros(c) {
                nnz[c * pes + (r % pes)] += 1;
            }
        }
        PeWorkload {
            rows,
            cols,
            pes,
            nnz,
        }
    }

    /// The dense baseline's workload: every PE multiplies its whole row
    /// slice for every column, `ceil(rows / pes)` MACs each.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension or PE count.
    pub fn dense(rows: usize, cols: usize, pes: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && pes > 0,
            "dimensions must be non-zero"
        );
        let mut nnz = vec![0u32; cols * pes];
        for c in 0..cols {
            for k in 0..pes {
                // PE k owns rows k, k+pes, ... — count them exactly.
                nnz[c * pes + k] = (rows.saturating_sub(k).div_ceil(pes)) as u32;
            }
        }
        PeWorkload {
            rows,
            cols,
            pes,
            nnz,
        }
    }

    /// Matrix rows this workload slices.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns (broadcast slots).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Processing elements.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Retained weights PE `k` holds of column `c`.
    pub fn col_pe_nnz(&self, c: usize, k: usize) -> u32 {
        self.nnz[c * self.pes + k]
    }

    /// Mutable access for property tests that perturb one slice.
    #[doc(hidden)]
    pub fn col_pe_nnz_mut(&mut self, c: usize, k: usize) -> &mut u32 {
        &mut self.nnz[c * self.pes + k]
    }
}

/// One PE's busy time, as coalesced `[start, end)` cycle intervals —
/// the same shape the event-log/Gantt reports render.
pub type BusyIntervals = Vec<(u64, u64)>;

/// The result of one array run.
#[derive(Debug, Clone, PartialEq)]
pub struct PeTimeline {
    /// Total cycles from first broadcast to last retired MAC.
    pub cycles: u64,
    /// Columns actually broadcast.
    pub broadcasts: u64,
    /// Columns skipped by leading-nonzero detection (zero activations).
    pub skipped: u64,
    /// Cycles the broadcaster spent stalled on a full PE FIFO.
    pub stall_cycles: u64,
    /// MAC cycles per PE (its retained work across broadcast columns).
    pub busy_cycles: Vec<u64>,
    /// Per-PE coalesced busy intervals, cycle-granular.
    pub intervals: Vec<BusyIntervals>,
}

impl PeTimeline {
    /// Max-over-mean per-PE busy cycles: 1.0 is perfectly balanced, and
    /// the array's useful throughput divides by this factor.
    pub fn load_imbalance(&self) -> f64 {
        let max = self.busy_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.busy_cycles.iter().sum::<u64>() as f64 / self.busy_cycles.len() as f64;
        max as f64 / mean
    }

    /// Fraction of `pes x cycles` spent on retained MACs.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.busy_cycles.iter().sum::<u64>() as f64
            / (self.cycles as f64 * self.busy_cycles.len() as f64)
    }

    /// PE `k`'s busy intervals in seconds at `clock_hz`, ready for the
    /// Gantt renderers that plot link/pipeline spans.
    pub fn busy_seconds(&self, k: usize, clock_hz: f64) -> Vec<(f64, f64)> {
        self.intervals[k]
            .iter()
            .map(|&(a, b)| (a as f64 / clock_hz, b as f64 / clock_hz))
            .collect()
    }
}

/// Execution trace kept by [`PeArray::run_traced`] for invariant checks:
/// exact broadcast and per-PE start/finish times per column.
#[derive(Debug, Clone, PartialEq)]
pub struct PeTrace {
    /// Cycle each processed column was broadcast at.
    pub broadcast_cycles: Vec<u64>,
    /// `spans[k][n] = (start, finish)` of PE `k` on the `n`-th processed
    /// column (equal start/finish when the PE held no weights there).
    pub spans: Vec<Vec<(u64, u64)>>,
}

/// The array configuration: PE count, FIFO depth, clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeArray {
    /// Processing elements (EIE builds 64).
    pub pes: usize,
    /// Activation-FIFO entries per PE (broadcast-ahead window).
    pub fifo_depth: usize,
    /// Clock in Hz, used only to convert cycle timelines to seconds
    /// (EIE signs off at 800 MHz).
    pub clock_hz: f64,
}

impl PeArray {
    /// An array of `pes` elements at EIE's defaults: 8-deep activation
    /// FIFOs, 800 MHz.
    ///
    /// # Panics
    ///
    /// Panics on a zero PE count.
    pub fn new(pes: usize) -> Self {
        assert!(pes > 0, "need at least one PE");
        PeArray {
            pes,
            fifo_depth: 8,
            clock_hz: 800e6,
        }
    }

    /// Overrides the FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics on a zero depth (a depth-1 FIFO means fully synchronous
    /// broadcast: every PE must finish a column before the next one).
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "FIFO needs at least one slot");
        self.fifo_depth = depth;
        self
    }

    /// Cycles a dense array of this PE count spends on a `rows x cols`
    /// matvec: every column costs the full `ceil(rows / pes)` slice.
    pub fn dense_cycles(&self, rows: usize, cols: usize) -> u64 {
        cols as u64 * (rows.div_ceil(self.pes)) as u64
    }

    /// Runs one matvec through the array. `acts` supplies the input
    /// activations (only their zero pattern matters to timing); with
    /// `skip_zeros` the broadcaster's leading-nonzero detector drops
    /// zero activations before they reach the FIFOs.
    ///
    /// # Panics
    ///
    /// Panics unless `acts` has one entry per workload column and the
    /// workload was sliced for this array's PE count.
    pub fn run(&self, workload: &PeWorkload, acts: &[f32], skip_zeros: bool) -> PeTimeline {
        self.simulate(workload, acts, skip_zeros, |_, _, _, _| {})
    }

    /// [`PeArray::run`] keeping a full [`PeTrace`] — quadratic memory in
    /// the matrix size, meant for tests and small Gantt renders.
    pub fn run_traced(
        &self,
        workload: &PeWorkload,
        acts: &[f32],
        skip_zeros: bool,
    ) -> (PeTimeline, PeTrace) {
        let mut trace = PeTrace {
            broadcast_cycles: Vec::new(),
            spans: vec![Vec::new(); self.pes],
        };
        let timeline = self.simulate(workload, acts, skip_zeros, |k, t, start, finish| {
            if k == 0 {
                trace.broadcast_cycles.push(t);
            }
            trace.spans[k].push((start, finish));
        });
        (timeline, trace)
    }

    fn simulate(
        &self,
        workload: &PeWorkload,
        acts: &[f32],
        skip_zeros: bool,
        mut observe: impl FnMut(usize, u64, u64, u64),
    ) -> PeTimeline {
        assert_eq!(
            acts.len(),
            workload.cols(),
            "one activation per matrix column"
        );
        assert_eq!(workload.pes(), self.pes, "workload sliced for this array");
        let pes = self.pes;
        let depth = self.fifo_depth;
        // finish[k] of the previous column, and a ring of the last
        // `depth` finishes per PE for the FIFO-space constraint.
        let mut finish_prev = vec![0u64; pes];
        let mut finish_ring = vec![0u64; pes * depth];
        let mut busy = vec![0u64; pes];
        let mut intervals: Vec<BusyIntervals> = vec![Vec::new(); pes];
        let mut t_prev: Option<u64> = None;
        let mut processed = 0u64;
        let mut skipped = 0u64;
        let mut stall_cycles = 0u64;
        let mut makespan = 0u64;

        for (c, &a) in acts.iter().enumerate() {
            if skip_zeros && a == 0.0 {
                skipped += 1;
                continue;
            }
            let n = processed as usize;
            // Earliest issue: one broadcast per cycle, and every PE must
            // have retired its entry from `depth` broadcasts ago.
            let mut t = match t_prev {
                None => 0,
                Some(p) => p + 1,
            };
            if n >= depth {
                let slot = n % depth;
                let gate = (0..pes)
                    .map(|k| finish_ring[k * depth + slot])
                    .max()
                    .unwrap_or(0);
                if gate > t {
                    stall_cycles += gate - t;
                    t = gate;
                }
            }
            for k in 0..pes {
                let w = u64::from(workload.col_pe_nnz(c, k));
                let start = t.max(finish_prev[k]);
                let finish = start + w;
                if w > 0 {
                    busy[k] += w;
                    match intervals[k].last_mut() {
                        Some(last) if last.1 == start => last.1 = finish,
                        _ => intervals[k].push((start, finish)),
                    }
                }
                finish_prev[k] = finish;
                finish_ring[k * depth + n % depth] = finish;
                makespan = makespan.max(finish);
                observe(k, t, start, finish);
            }
            makespan = makespan.max(t + 1);
            t_prev = Some(t);
            processed += 1;
        }

        PeTimeline {
            cycles: makespan,
            broadcasts: processed,
            skipped,
            stall_cycles,
            busy_cycles: busy,
            intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth_workload(rng: &mut StdRng, rows: usize, cols: usize, pes: usize) -> PeWorkload {
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0..u64::MAX);
        PeWorkload::from_matrix(&CscMatrix::synth(rows, cols, density, seed), pes)
    }

    #[test]
    fn dense_workload_is_perfectly_balanced() {
        let w = PeWorkload::dense(64, 100, 8);
        let acts = vec![1.0f32; 100];
        let t = PeArray::new(8).run(&w, &acts, false);
        assert_eq!(t.load_imbalance(), 1.0);
        assert_eq!(t.broadcasts, 100);
        assert_eq!(t.skipped, 0);
        // 8 MACs per PE per column; the pipeline drains at one column
        // per 8 cycles after the FIFO fills.
        assert_eq!(t.busy_cycles, vec![100 * 8; 8]);
        assert!(t.cycles >= PeArray::new(8).dense_cycles(64, 100));
        // Rows not divisible by PEs: the last PEs hold one fewer row.
        let w = PeWorkload::dense(13, 4, 8);
        assert_eq!(w.col_pe_nnz(0, 0), 2);
        assert_eq!(w.col_pe_nnz(0, 4), 2);
        assert_eq!(w.col_pe_nnz(0, 5), 1);
    }

    #[test]
    fn sparse_beats_dense_and_skipping_beats_sparse() {
        let m = CscMatrix::synth(256, 256, 0.1, 42);
        let arr = PeArray::new(16);
        let w = PeWorkload::from_matrix(&m, 16);
        let mut acts = vec![0.0f32; 256];
        crate::weights::fill_weights(5, 0.3, &mut acts);
        let dense = arr.run(&PeWorkload::dense(256, 256, 16), &acts, false);
        let csc = arr.run(&w, &acts, false);
        let csc_act = arr.run(&w, &acts, true);
        assert!(csc.cycles < dense.cycles / 3, "10% weights cut most MACs");
        assert!(csc_act.cycles < csc.cycles, "LNZD removes ~70% of columns");
        assert_eq!(csc_act.broadcasts + csc_act.skipped, 256);
        assert!(csc_act.skipped > 256 / 2);
        assert!(csc.load_imbalance() > 1.0, "random slices are imbalanced");
        // First broadcast issues at cycle 0, so the uniform pipeline
        // hits the closed-form dense bound exactly.
        assert_eq!(dense.cycles, arr.dense_cycles(256, 256));
    }

    #[test]
    fn single_pe_serializes_all_work() {
        let m = CscMatrix::synth(32, 20, 0.4, 9);
        let w = PeWorkload::from_matrix(&m, 1);
        let acts = vec![1.0f32; 20];
        let t = PeArray::new(1).run(&w, &acts, false);
        assert_eq!(t.busy_cycles[0], m.nnz());
        // One PE: makespan is total work plus any cycles where a column
        // broadcast outpaces an empty slice.
        assert!(t.cycles >= m.nnz());
        assert_eq!(t.load_imbalance(), 1.0);
        assert_eq!(t.utilization(), m.nnz() as f64 / t.cycles as f64);
    }

    #[test]
    fn fifo_depth_one_forces_synchronous_columns() {
        // depth 1: every PE finishes column n before n+1 broadcasts, so
        // makespan is the sum over columns of the max per-PE work.
        let m = CscMatrix::synth(64, 40, 0.3, 4);
        let w = PeWorkload::from_matrix(&m, 4);
        let acts = vec![1.0f32; 40];
        let t = PeArray::new(4).fifo_depth(1).run(&w, &acts, false);
        let mut t_issue = 0u64;
        let mut drain = 0u64;
        let mut want = 0u64;
        for c in 0..40 {
            let peak = (0..4).map(|k| u64::from(w.col_pe_nnz(c, k))).max().unwrap();
            // Issue at max(prev issue + 1, prev column fully drained);
            // the column retires `peak` cycles later.
            if c > 0 {
                t_issue = (t_issue + 1).max(drain);
            }
            drain = t_issue + peak;
            want = want.max(drain);
        }
        assert_eq!(t.cycles, want.max(t_issue + 1));
        // Deeper FIFOs can only help.
        let deep = PeArray::new(4).fifo_depth(16).run(&w, &acts, false);
        assert!(deep.cycles <= t.cycles);
        assert!(deep.stall_cycles <= t.stall_cycles);
    }

    #[test]
    fn work_conservation_no_idle_pe_with_backlog() {
        // Recorded invariant: whenever PE k sat idle between consecutive
        // columns (start > previous finish), the gap existed because its
        // queue was empty — the next column had not been broadcast yet,
        // so its start coincides with that broadcast.
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..20 {
            let pes = [1usize, 2, 4, 8][rng.gen_range(0usize..4)];
            let rows = rng.gen_range(8usize..64);
            let cols = rng.gen_range(4usize..48);
            let w = synth_workload(&mut rng, rows, cols, pes);
            let mut acts = vec![0.0f32; w.cols()];
            crate::weights::fill_weights(rng.gen_range(0..u64::MAX), 0.5, &mut acts);
            let skip = rng.gen_range(0u32..2) == 1;
            let (timeline, trace) = PeArray::new(pes)
                .fifo_depth([1usize, 2, 8][rng.gen_range(0usize..3)])
                .run_traced(&w, &acts, skip);
            for k in 0..pes {
                for n in 1..trace.spans[k].len() {
                    let (start, _) = trace.spans[k][n];
                    let (_, prev_finish) = trace.spans[k][n - 1];
                    if start > prev_finish {
                        assert_eq!(
                            start, trace.broadcast_cycles[n],
                            "idle PE must be waiting on the broadcaster"
                        );
                    }
                }
                // Busy accounting matches the trace.
                let traced: u64 = trace.spans[k].iter().map(|&(a, b)| b - a).sum();
                assert_eq!(traced, timeline.busy_cycles[k]);
            }
            // Broadcasts issue at least one cycle apart.
            assert!(trace.broadcast_cycles.windows(2).all(|p| p[1] > p[0]));
        }
    }

    #[test]
    fn cycles_monotone_in_nnz() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let pes = [2usize, 4, 8][rng.gen_range(0usize..3)];
            let rows = rng.gen_range(8usize..64);
            let cols = rng.gen_range(4usize..32);
            let mut w = synth_workload(&mut rng, rows, cols, pes);
            let acts = vec![1.0f32; w.cols()];
            let arr = PeArray::new(pes).fifo_depth(rng.gen_range(1usize..9));
            let before = arr.run(&w, &acts, false);
            // Grow one random slice; total time can never shrink.
            let c = rng.gen_range(0..w.cols());
            let k = rng.gen_range(0..pes);
            *w.col_pe_nnz_mut(c, k) += rng.gen_range(1u32..4);
            let after = arr.run(&w, &acts, false);
            assert!(
                after.cycles >= before.cycles,
                "adding work shrank the makespan"
            );
            assert!(after.busy_cycles[k] > before.busy_cycles[k]);
        }
    }

    #[test]
    fn intervals_are_coalesced_and_convertible() {
        let m = CscMatrix::synth(64, 32, 0.3, 1);
        let w = PeWorkload::from_matrix(&m, 4);
        let acts = vec![1.0f32; 32];
        let t = PeArray::new(4).run(&w, &acts, false);
        for k in 0..4 {
            let iv = &t.intervals[k];
            assert!(iv.iter().all(|&(a, b)| b > a));
            assert!(iv.windows(2).all(|p| p[0].1 < p[1].0), "coalesced + sorted");
            let busy: u64 = iv.iter().map(|&(a, b)| b - a).sum();
            assert_eq!(busy, t.busy_cycles[k]);
            let secs = t.busy_seconds(k, 800e6);
            assert_eq!(secs.len(), iv.len());
            assert!(secs.iter().all(|&(a, b)| b > a && a >= 0.0));
        }
    }
}
