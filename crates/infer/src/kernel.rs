//! The inference [`JobKernel`] for the `cdma-serve` worker pool.

use cdma_compress::{Compressor, DecodeError, Zvc};
use cdma_serve::{DefaultKernel, JobKernel, JobKind, OutputBufs, Request, Response};

use crate::weights::CscMatrix;

/// Serves [`JobKind::Infer`] requests as CSC matvecs over one resident
/// weight matrix, delegating compress/decompress jobs to the stock
/// kernel — so one server (or virtual-time replay) carries both the
/// training-offload and inference workload families through the same
/// admission control and buffer recycling.
///
/// An infer request's `words` hold `batch` input vectors of
/// [`CscMatrix::cols`] activations packed back to back, and its
/// `elements` field must equal [`CscMatrix::rows`] (outputs per
/// vector). Traffic accounting models a weight-and-activation transfer
/// per request: `uncompressed_bytes` is what a dense engine would move
/// (dense weights + raw activations in and out), `wire_bytes` what this
/// engine moves (CSC weights + ZVC-compressed input activations + raw
/// outputs), making per-tenant compression ratios directly comparable
/// with the compress/decompress jobs sharing the pool.
///
/// ```
/// use std::sync::Arc;
/// use cdma_compress::Algorithm;
/// use cdma_infer::{CscMatrix, InferKernel};
/// use cdma_serve::{JobKernel, OutputBufs, Request, TenantId};
///
/// let kernel = InferKernel::new(CscMatrix::synth(64, 128, 0.1, 7));
/// let x = vec![1.0f32; 128];
/// let resp = kernel.execute(
///     Request::infer(TenantId(0), 1, Algorithm::Csc, x, 64),
///     1024,
///     OutputBufs::default(),
/// );
/// assert!(resp.error.is_none());
/// assert_eq!(resp.words.len(), 64);
/// assert!(resp.wire_bytes < resp.uncompressed_bytes / 4);
/// ```
#[derive(Debug)]
pub struct InferKernel {
    matrix: CscMatrix,
}

impl InferKernel {
    /// Wraps a compressed weight matrix for serving.
    pub fn new(matrix: CscMatrix) -> Self {
        InferKernel { matrix }
    }

    /// The resident weight matrix.
    pub fn matrix(&self) -> &CscMatrix {
        &self.matrix
    }
}

impl JobKernel for InferKernel {
    fn execute(&self, mut req: Request, window_elems: usize, bufs: OutputBufs) -> Response {
        if req.kind != JobKind::Infer {
            return DefaultKernel.execute(req, window_elems, bufs);
        }
        let OutputBufs {
            bytes,
            offsets,
            mut words,
        } = bufs;
        words.clear();
        let (rows, cols) = (self.matrix.rows(), self.matrix.cols());
        let mut error = None;
        let mut wire_bytes = 0;
        if req.elements as usize != rows {
            error = Some(DecodeError::Corrupt(
                "inference output size does not match the resident matrix",
            ));
        } else if !req.words.len().is_multiple_of(cols) {
            error = Some(DecodeError::Corrupt(
                "inference input is not a whole number of activation vectors",
            ));
        } else {
            let mut y = Vec::new();
            for x in req.words.chunks_exact(cols) {
                self.matrix.matvec_into(x, &mut y);
                words.extend_from_slice(&y);
            }
            // Weights travel compressed, input activations under ZVC,
            // outputs raw.
            wire_bytes = self.matrix.compressed_bytes()
                + Zvc::new().compressed_size(&req.words) as u64
                + (words.len() * 4) as u64;
        }
        let batch = req.words.len() / cols;
        let uncompressed_bytes =
            self.matrix.dense_bytes() + (req.words.len() * 4) as u64 + (batch * rows * 4) as u64;
        Response {
            tenant: req.tenant,
            id: req.id,
            kind: req.kind,
            bytes,
            offsets,
            words,
            uncompressed_bytes,
            wire_bytes,
            error,
            input_words: std::mem::take(&mut req.words),
            input_bytes: std::mem::take(&mut req.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdma_compress::Algorithm;
    use cdma_serve::TenantId;

    fn kernel() -> InferKernel {
        InferKernel::new(CscMatrix::synth(32, 48, 0.25, 3))
    }

    #[test]
    fn batched_matvec_matches_store() {
        let k = kernel();
        let dense = k.matrix().to_dense();
        let mut x = vec![0.0f32; 48 * 3];
        crate::weights::fill_weights(8, 0.4, &mut x);
        let resp = k.execute(
            Request::infer(TenantId(1), 5, Algorithm::Csc, x.clone(), 32),
            1024,
            OutputBufs::default(),
        );
        assert!(resp.error.is_none());
        assert_eq!(resp.words.len(), 32 * 3);
        for b in 0..3 {
            for r in 0..32 {
                let want: f32 = (0..48).map(|c| dense[r * 48 + c] * x[b * 48 + c]).sum();
                let got = resp.words[b * 32 + r];
                assert!((got - want).abs() <= 1e-6 * want.abs().max(1.0));
            }
        }
        // Input comes back for recycling; accounting covers both sides.
        assert_eq!(resp.input_words, x);
        assert_eq!(
            resp.uncompressed_bytes,
            k.matrix().dense_bytes() + (48 * 3 + 32 * 3) * 4
        );
        assert!(resp.wire_bytes > 0 && resp.wire_bytes < resp.uncompressed_bytes);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let k = kernel();
        let bad_out = k.execute(
            Request::infer(TenantId(0), 1, Algorithm::Csc, vec![1.0; 48], 31),
            1024,
            OutputBufs::default(),
        );
        assert!(bad_out.error.is_some());
        assert!(bad_out.words.is_empty());
        let ragged = k.execute(
            Request::infer(TenantId(0), 2, Algorithm::Csc, vec![1.0; 47], 32),
            1024,
            OutputBufs::default(),
        );
        assert!(ragged.error.is_some());
    }

    #[test]
    fn delegates_stock_kinds_to_default_kernel() {
        let k = kernel();
        let data: Vec<f32> = (0..1024)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let resp = k.execute(
            Request::compress(TenantId(0), 9, Algorithm::Zvc, data.clone()),
            1024,
            OutputBufs::default(),
        );
        assert!(resp.error.is_none());
        let want = DefaultKernel.execute(
            Request::compress(TenantId(0), 9, Algorithm::Zvc, data),
            1024,
            OutputBufs::default(),
        );
        assert_eq!(
            resp.bytes, want.bytes,
            "byte-identical with the default path"
        );
    }
}
