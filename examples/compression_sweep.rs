//! Sweeps density × layout × algorithm and prints compression ratios — a
//! miniature interactive version of Fig. 11.
//!
//! ```bash
//! cargo run --release --example compression_sweep
//! ```

use cdma::compress::{windowed, Algorithm, Zvc};
use cdma::sparsity::ActivationGen;
use cdma::tensor::{Layout, Shape4};

fn main() {
    let shape = Shape4::new(4, 32, 27, 27);
    println!("activation shape {shape}, 4 KB compression windows\n");
    println!("density  layout  RL      ZV      ZL      ZV-analytic");
    for density in [0.10, 0.25, 0.40, 0.60, 0.80] {
        for layout in Layout::ALL {
            let mut gen = ActivationGen::seeded(7);
            let t = gen.generate(shape, layout, density);
            print!("{density:<8.2} {layout:<7}");
            for alg in Algorithm::ALL {
                let codec = alg.codec();
                let stats =
                    windowed::compress_stats(&codec, t.as_slice(), windowed::DEFAULT_WINDOW_BYTES);
                print!(" {:<7.2}", stats.ratio());
            }
            println!(" {:<7.2}", Zvc::analytic_ratio(density));
        }
        println!();
    }
    println!("observations (matching Section VII-A):");
    println!(" * ZV columns are identical across layouts — ZVC is layout-insensitive;");
    println!(" * RL and ZL fall off NCHW -> NHWC: they need spatially clustered zeros;");
    println!(" * measured ZV matches the closed form 32/(1+32d).");
}
