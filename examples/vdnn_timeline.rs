//! Simulates one training step of each paper network under vDNN and
//! cDMA-ZV, printing the per-phase timeline — a per-network view of Fig. 13.
//!
//! ```bash
//! cargo run --release --example vdnn_timeline
//! ```

use cdma::compress::Algorithm;
use cdma::gpusim::SystemConfig;
use cdma::models::{profiles, zoo};
use cdma::tensor::Layout;
use cdma::vdnn::traffic;
use cdma::vdnn::{ComputeModel, CudnnVersion, RatioTable, StepSim, TransferPolicy};

fn main() {
    let cfg = SystemConfig::titan_x_pcie3();
    let sim = StepSim::new(cfg, ComputeModel::titan_x(CudnnVersion::V5));
    let table = RatioTable::build_fast(42);

    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "network", "oracle", "vDNN", "cDMA-ZV", "stall-v", "stall-c", "gain"
    );
    for spec in zoo::all_networks() {
        let profile = profiles::density_profile(&spec);
        let t = traffic::network_traffic(&spec, &profile, Algorithm::Zvc, Layout::Nchw, &table);
        let ratios = traffic::per_layer_ratios(&t);

        let oracle = sim.step_time(&spec, TransferPolicy::Oracle);
        let vdnn = sim.step_time(&spec, TransferPolicy::uniform(&spec, 1.0));
        let cdma = sim.step_time(&spec, TransferPolicy::OffloadAll(ratios));

        println!(
            "{:<11} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>7.0}% {:>7.0}% {:>6.0}%",
            spec.name(),
            oracle.total() * 1e3,
            vdnn.total() * 1e3,
            cdma.total() * 1e3,
            vdnn.stall_fraction() * 100.0,
            cdma.stall_fraction() * 100.0,
            (vdnn.total() / cdma.total() - 1.0) * 100.0,
        );
    }
    println!("\nstall-v / stall-c: fraction of the step spent waiting on PCIe under vDNN / cDMA.");
    println!("gain: cDMA-ZV speedup over vDNN (paper: 32% average, 61% max).");
}
