//! Trains a small CNN end-to-end (real backprop on the synthetic dataset),
//! measures its genuine post-ReLU activation sparsity at checkpoints, and
//! offloads the *actual* activations through the cDMA engine — the whole
//! paper pipeline in one binary.
//!
//! ```bash
//! cargo run --release --example train_and_offload
//! ```

use cdma::core::CdmaEngine;
use cdma::dnn::synthetic::SyntheticImages;
use cdma::dnn::{Mode, Sgd, Trainer};
use cdma::gpusim::SystemConfig;
use cdma::models::tiny;

fn main() {
    let mut data = SyntheticImages::new(4, 1, 16, 99);
    let mut trainer = Trainer::new(tiny::tiny_alexnet(4, 7), Sgd::new(0.03, 0.9, 1e-4));
    let engine = CdmaEngine::zvc(SystemConfig::titan_x_pcie3());
    let (probe_x, _) = data.batch(64);

    println!("step   loss   relu0-density   ZVC-ratio(relu0 activations)");
    let steps = 400;
    for step in 0..steps {
        let (x, y) = data.batch(16);
        let loss = trainer.train_step(&x, &y);
        if step % 50 == 0 || step == steps - 1 {
            // Capture the real relu0 output for the probe batch.
            let mut relu0 = None;
            let _ = trainer
                .net
                .forward_probed(&probe_x, Mode::Eval, &mut |name, _, out| {
                    if name == "relu0" {
                        relu0 = Some(out.clone());
                    }
                });
            let act = relu0.expect("relu0 probed");
            let copy = engine.offload_tensor(&act);
            println!(
                "{step:>4}   {loss:<5.3}  {:<15.3} {:.2}x",
                act.density(),
                copy.stats.ratio()
            );
        }
    }

    let (test_x, test_y) = data.batch(256);
    let (loss, acc) = trainer.evaluate(&test_x, &test_y);
    println!(
        "\nfinal: loss {loss:.3}, top-1 accuracy {:.1}% (chance 25%)",
        acc * 100.0
    );
    println!(
        "note how the compression ratio tracks 32/(1+32*density) as training sparsifies the net."
    );
}
