//! Quickstart: compress a sparse activation map through the cDMA engine and
//! watch the PCIe transfer shrink.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cdma::core::CdmaEngine;
use cdma::gpusim::SystemConfig;
use cdma::sparsity::ActivationGen;
use cdma::tensor::{Layout, Shape4};

fn main() {
    // The paper's platform: Titan X (Maxwell) over PCIe gen3.
    let cfg = SystemConfig::titan_x_pcie3();
    let engine = CdmaEngine::zvc(cfg);

    // One minibatch of AlexNet conv1-like activations at 40% density —
    // roughly what a partly-trained network produces (Section IV).
    let shape = Shape4::new(16, 256, 27, 27);
    let mut gen = ActivationGen::seeded(2018);
    let activations = gen.generate(shape, Layout::Nchw, 0.40);

    println!(
        "offloading {} MB of activation maps...",
        activations.bytes() / (1 << 20)
    );
    let copy = engine.offload_tensor(&activations);

    println!("  compression ratio : {:.2}x (ZVC)", copy.stats.ratio());
    println!("  bytes on PCIe     : {} MB", copy.wire_bytes() / (1 << 20));
    println!(
        "  transfer time     : {:.2} ms (simulated)",
        copy.transfer.total_time * 1e3
    );
    println!(
        "  speedup vs vDNN   : {:.2}x",
        engine.offload_speedup(&copy)
    );
    println!(
        "  DMA buffer peak   : {:.1} KB of {} KB",
        copy.transfer.max_buffer_occupancy / 1024.0,
        cfg.dma_buffer / 1024
    );

    // Lossless: the prefetch path returns the exact activations.
    let restored = engine
        .memcpy_decompressed(&copy)
        .expect("transfer is lossless");
    assert_eq!(restored, activations.as_slice());
    println!("  roundtrip         : bit-exact ✔");
}
